//! Analytic per-GPU memory-footprint model (Tables II and III).
//!
//! The experiments behind the paper's memory numbers ran on V100 GPUs holding
//! the real 1024×1024 diffraction patterns and 100-slice tiles; this model
//! reproduces the *accounting* of those allocations for any GPU count so the
//! tables can be regenerated without the hardware. Assumptions (documented in
//! DESIGN.md): reconstruction voxels are stored as single-precision complex
//! (8 bytes), diffraction measurements as half precision (2 bytes), and every
//! rank keeps a fixed workspace (probe, propagator, FFT scratch and framework
//! overhead) independent of the decomposition.

use crate::tiling::TileGrid;
use ptycho_sim::dataset::DatasetSpec;

/// Bytes per reconstruction voxel on the GPU (complex single precision).
pub const GPU_VOXEL_BYTES: f64 = 8.0;
/// Bytes per stored measurement value on the GPU (half precision).
pub const GPU_MEASUREMENT_BYTES: f64 = 2.0;
/// Fixed per-rank framework overhead in bytes (CUDA/MPI context, kernels).
pub const FRAMEWORK_OVERHEAD_BYTES: f64 = 50.0e6;
/// Scratch buffers for the forward model: a few detector-sized complex fields.
pub const WORKSPACE_DETECTOR_BUFFERS: f64 = 3.0;

/// Per-GPU memory broken down by what it stores, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoryBreakdown {
    /// The tile's own (core) voxels, all slices.
    pub tile_voxels: f64,
    /// The halo-extension voxels.
    pub halo_voxels: f64,
    /// Diffraction measurements assigned to the tile (including any redundant
    /// probe locations for the Halo Voxel Exchange method).
    pub measurements: f64,
    /// Gradient accumulation buffers (Gradient Decomposition only).
    pub buffers: f64,
    /// Probe, propagator, FFT scratch and framework overhead.
    pub workspace: f64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total_bytes(&self) -> f64 {
        self.tile_voxels + self.halo_voxels + self.measurements + self.buffers + self.workspace
    }

    /// Total in gigabytes (the unit of the paper's tables).
    pub fn gigabytes(&self) -> f64 {
        self.total_bytes() / 1e9
    }
}

/// The decomposition geometry shared by the memory and runtime models:
/// per-GPU tile and halo sizes plus probe-location counts, computed
/// analytically from the dataset geometry for any GPU count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecompositionGeometry {
    /// Number of GPUs (tiles).
    pub gpus: usize,
    /// Tile grid shape.
    pub grid: (usize, usize),
    /// Average core-tile size in pixels (rows, cols).
    pub tile_px: (f64, f64),
    /// Halo width in pixels.
    pub halo_px: f64,
    /// Average halo-extended tile size in pixels (rows, cols), clamped to the
    /// image.
    pub extended_px: (f64, f64),
    /// Average probe locations owned per tile.
    pub avg_owned: f64,
    /// Maximum probe locations owned by any tile.
    pub max_owned: f64,
    /// Average probe locations *assigned* per tile (equals owned for the
    /// Gradient Decomposition method; larger for Halo Voxel Exchange).
    pub avg_assigned: f64,
    /// Maximum probe locations assigned to any tile.
    pub max_assigned: f64,
}

impl DecompositionGeometry {
    /// Area of the average extended tile in pixels.
    pub fn extended_area(&self) -> f64 {
        self.extended_px.0 * self.extended_px.1
    }

    /// Area of the average core tile in pixels.
    pub fn core_area(&self) -> f64 {
        self.tile_px.0 * self.tile_px.1
    }

    /// Area of the average halo in pixels.
    pub fn halo_area(&self) -> f64 {
        (self.extended_area() - self.core_area()).max(0.0)
    }
}

/// Counts how many probe centres of a 1D scan axis fall inside `[lo, hi)`.
/// Probe centres sit at `origin + i·step` for `i in 0..count`.
fn probes_in_range(origin: f64, step: f64, count: usize, lo: f64, hi: f64) -> usize {
    (0..count)
        .filter(|&i| {
            let p = origin + i as f64 * step;
            p >= lo && p < hi
        })
        .count()
}

/// Computes the decomposition geometry of a paper-scale dataset for a GPU
/// count, halo width (in picometres) and probe-assignment margin (in probe
/// rows; 0 for Gradient Decomposition, 2 for Halo Voxel Exchange).
pub fn decomposition_geometry(
    spec: &DatasetSpec,
    gpus: usize,
    halo_pm: f64,
    extra_probe_rows: usize,
) -> DecompositionGeometry {
    assert!(gpus > 0, "need at least one GPU");
    let grid = TileGrid::grid_dims_for(gpus);
    let lateral = spec.lateral_px() as f64;
    let tile_rows = lateral / grid.0 as f64;
    let tile_cols = lateral / grid.1 as f64;
    let halo_px = halo_pm / spec.voxel_size_pm.0;

    // Average extension: interior tiles gain the full halo on both sides,
    // border tiles are clamped; averaging over the grid gives the expected
    // extension per axis.
    let avg_ext = |tiles: usize, tile: f64| -> f64 {
        if tiles == 1 {
            tile.min(lateral)
        } else {
            let interior = tiles.saturating_sub(2) as f64;
            let border = 2.0;
            let interior_ext = tile + 2.0 * halo_px;
            let border_ext = tile + halo_px;
            ((interior * interior_ext + border * border_ext) / tiles as f64).min(lateral)
        }
    };
    let extended = (avg_ext(grid.0, tile_rows), avg_ext(grid.1, tile_cols));

    // Probe centres form a regular grid inside the scanned area.
    let (scan_rows, scan_cols) = spec.scan_grid;
    let step = spec.scan_step_px();
    let scan_origin = spec.scan_margin_px();
    let assign_margin = extra_probe_rows as f64 * step;

    let mut owned_counts = Vec::with_capacity(gpus);
    let mut assigned_counts = Vec::with_capacity(gpus);
    for gr in 0..grid.0 {
        let row_lo = gr as f64 * tile_rows;
        let row_hi = (gr + 1) as f64 * tile_rows;
        let owned_rows = probes_in_range(scan_origin, step, scan_rows, row_lo, row_hi);
        let assigned_rows = probes_in_range(
            scan_origin,
            step,
            scan_rows,
            row_lo - assign_margin,
            row_hi + assign_margin,
        );
        for gc in 0..grid.1 {
            let col_lo = gc as f64 * tile_cols;
            let col_hi = (gc + 1) as f64 * tile_cols;
            let owned_cols = probes_in_range(scan_origin, step, scan_cols, col_lo, col_hi);
            let assigned_cols = probes_in_range(
                scan_origin,
                step,
                scan_cols,
                col_lo - assign_margin,
                col_hi + assign_margin,
            );
            owned_counts.push(owned_rows * owned_cols);
            assigned_counts.push(assigned_rows * assigned_cols);
        }
    }
    let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    let max = |v: &[usize]| v.iter().copied().max().unwrap_or(0) as f64;

    DecompositionGeometry {
        gpus,
        grid,
        tile_px: (tile_rows, tile_cols),
        halo_px,
        extended_px: extended,
        avg_owned: avg(&owned_counts),
        max_owned: max(&owned_counts),
        avg_assigned: avg(&assigned_counts),
        max_assigned: max(&assigned_counts),
    }
}

/// Per-GPU memory footprint of the Gradient Decomposition method.
pub fn gd_memory_per_gpu(spec: &DatasetSpec, gpus: usize, halo_pm: f64) -> MemoryBreakdown {
    let geometry = decomposition_geometry(spec, gpus, halo_pm, 0);
    memory_from_geometry(spec, &geometry, true)
}

/// Per-GPU memory footprint of the Halo Voxel Exchange baseline.
pub fn hve_memory_per_gpu(
    spec: &DatasetSpec,
    gpus: usize,
    halo_pm: f64,
    extra_probe_rows: usize,
) -> MemoryBreakdown {
    let geometry = decomposition_geometry(spec, gpus, halo_pm, extra_probe_rows);
    memory_from_geometry(spec, &geometry, false)
}

fn memory_from_geometry(
    spec: &DatasetSpec,
    geometry: &DecompositionGeometry,
    with_accumulation_buffer: bool,
) -> MemoryBreakdown {
    let slices = spec.slices() as f64;
    let detector = (spec.detector_px * spec.detector_px) as f64;
    let tile_voxels = geometry.core_area() * slices * GPU_VOXEL_BYTES;
    let halo_voxels = geometry.halo_area() * slices * GPU_VOXEL_BYTES;
    let measurements = geometry.avg_assigned * detector * GPU_MEASUREMENT_BYTES;
    let buffers = if with_accumulation_buffer {
        geometry.extended_area() * slices * GPU_VOXEL_BYTES
    } else {
        0.0
    };
    let workspace =
        WORKSPACE_DETECTOR_BUFFERS * detector * GPU_VOXEL_BYTES + FRAMEWORK_OVERHEAD_BYTES;
    MemoryBreakdown {
        tile_voxels,
        halo_voxels,
        measurements,
        buffers,
        workspace,
    }
}

/// The Halo Voxel Exchange feasibility rule used for the "NA" entries of the
/// paper's tables: each core tile must comfortably cover the halos it has to
/// fill in its neighbours (we require the smallest tile side to be at least
/// 1.5× the halo width).
///
/// This is deliberately *stricter* than [`hve_hard_feasible`]: the tables
/// mark a cell NA once the method stops being practical, which happens
/// before it becomes geometrically impossible. Every analytically feasible
/// cell is therefore also hard-feasible (the threaded
/// `HaloVoxelExchangeSolver` will construct), but not vice versa.
pub fn hve_feasible(spec: &DatasetSpec, gpus: usize, halo_pm: f64) -> bool {
    let geometry = decomposition_geometry(spec, gpus, halo_pm, 0);
    let min_tile = geometry.tile_px.0.min(geometry.tile_px.1);
    min_tile >= 1.5 * geometry.halo_px
}

/// The *hard* Halo Voxel Exchange constraint — the analytic twin of
/// `TileGrid::hve_feasible`, which is what makes
/// `HaloVoxelExchangeSolver::new` return an error: a tile strictly smaller
/// than the halo it must fill in its neighbours cannot produce consistent
/// tiles at all.
pub fn hve_hard_feasible(spec: &DatasetSpec, gpus: usize, halo_pm: f64) -> bool {
    let geometry = decomposition_geometry(spec, gpus, halo_pm, 0);
    let min_tile = geometry.tile_px.0.min(geometry.tile_px.1);
    min_tile >= geometry.halo_px
}

#[cfg(test)]
mod tests {
    use super::*;

    const GD_HALO_PM: f64 = 600.0;
    const HVE_HALO_PM: f64 = 890.0;

    #[test]
    fn geometry_partitions_probes() {
        let spec = DatasetSpec::lead_titanate_large();
        for gpus in [6, 54, 462, 4158] {
            let g = decomposition_geometry(&spec, gpus, GD_HALO_PM, 0);
            let total_owned = g.avg_owned * gpus as f64;
            assert!(
                (total_owned - spec.probe_locations as f64).abs() < 1e-6,
                "owned probes must partition the scan at {gpus} GPUs: {total_owned}"
            );
            assert!(g.max_owned >= g.avg_owned);
        }
    }

    #[test]
    fn hve_assigns_more_probes_than_gd() {
        let spec = DatasetSpec::lead_titanate_large();
        for gpus in [6, 54, 462] {
            let gd = decomposition_geometry(&spec, gpus, GD_HALO_PM, 0);
            let hve = decomposition_geometry(&spec, gpus, HVE_HALO_PM, 2);
            assert!(
                hve.avg_assigned > gd.avg_owned,
                "HVE must assign redundant probes at {gpus} GPUs"
            );
        }
    }

    #[test]
    fn memory_decreases_with_gpus() {
        let spec = DatasetSpec::lead_titanate_large();
        let counts = [6usize, 54, 198, 462, 924, 4158];
        let footprints: Vec<f64> = counts
            .iter()
            .map(|&g| gd_memory_per_gpu(&spec, g, GD_HALO_PM).gigabytes())
            .collect();
        for pair in footprints.windows(2) {
            assert!(
                pair[1] < pair[0],
                "memory must shrink with more GPUs: {footprints:?}"
            );
        }
    }

    #[test]
    fn memory_matches_paper_scale_large_dataset() {
        // Table III(a): 9.14 GB at 6 GPUs, 0.18 GB at 4158 GPUs. The model
        // should land in the same ballpark (within ~50%) and reproduce a
        // memory-reduction factor of several tens.
        let spec = DatasetSpec::lead_titanate_large();
        let at6 = gd_memory_per_gpu(&spec, 6, GD_HALO_PM).gigabytes();
        let at4158 = gd_memory_per_gpu(&spec, 4158, GD_HALO_PM).gigabytes();
        assert!((4.5..14.0).contains(&at6), "6-GPU footprint {at6} GB");
        assert!(
            (0.08..0.4).contains(&at4158),
            "4158-GPU footprint {at4158} GB"
        );
        let reduction = at6 / at4158;
        assert!(
            reduction > 25.0,
            "memory reduction {reduction} should be tens of x"
        );
    }

    #[test]
    fn gd_beats_hve_memory_at_matching_gpu_counts() {
        let spec = DatasetSpec::lead_titanate_large();
        for gpus in [54, 198, 462] {
            let gd = gd_memory_per_gpu(&spec, gpus, GD_HALO_PM).gigabytes();
            let hve = hve_memory_per_gpu(&spec, gpus, HVE_HALO_PM, 2).gigabytes();
            assert!(
                hve > gd,
                "HVE ({hve} GB) should need more memory than GD ({gd} GB) at {gpus} GPUs"
            );
        }
    }

    #[test]
    fn memory_floor_ratio_between_methods() {
        // Paper: GD reaches 0.18 GB at 4158 GPUs while HVE bottoms out at
        // 0.48 GB at its scalability limit of 462 GPUs (~2.7x more).
        let spec = DatasetSpec::lead_titanate_large();
        let gd_floor = gd_memory_per_gpu(&spec, 4158, GD_HALO_PM).gigabytes();
        let hve_floor = hve_memory_per_gpu(&spec, 462, HVE_HALO_PM, 2).gigabytes();
        let ratio = hve_floor / gd_floor;
        assert!(
            ratio > 1.5,
            "HVE floor ({hve_floor}) should be well above GD floor ({gd_floor}), ratio {ratio}"
        );
    }

    #[test]
    fn analytic_na_is_stricter_than_the_hard_constraint() {
        // If the tables say a cell is runnable, the solver's hard constraint
        // must agree; the converse may not hold (the 1.5x practicality band).
        for spec in [
            DatasetSpec::lead_titanate_small(),
            DatasetSpec::lead_titanate_large(),
        ] {
            for gpus in [6usize, 24, 54, 126, 198, 462, 924, 4158] {
                if hve_feasible(&spec, gpus, HVE_HALO_PM) {
                    assert!(
                        hve_hard_feasible(&spec, gpus, HVE_HALO_PM),
                        "{} at {gpus} GPUs: table cell feasible but hard-infeasible",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn hve_feasibility_limits_match_paper() {
        // Table II(b): HVE runs up to 54 GPUs on the small dataset, NA beyond.
        let small = DatasetSpec::lead_titanate_small();
        assert!(hve_feasible(&small, 6, HVE_HALO_PM));
        assert!(hve_feasible(&small, 54, HVE_HALO_PM));
        assert!(!hve_feasible(&small, 126, HVE_HALO_PM));
        // Table III(b): up to 462 GPUs on the large dataset.
        let large = DatasetSpec::lead_titanate_large();
        assert!(hve_feasible(&large, 462, HVE_HALO_PM));
        assert!(!hve_feasible(&large, 924, HVE_HALO_PM));
        // GD has no such limit at these scales.
        assert!(hve_feasible(&large, 6, GD_HALO_PM));
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let spec = DatasetSpec::lead_titanate_small();
        let b = gd_memory_per_gpu(&spec, 24, GD_HALO_PM);
        let sum = b.tile_voxels + b.halo_voxels + b.measurements + b.buffers + b.workspace;
        assert!((b.total_bytes() - sum).abs() < 1.0);
        assert!(b.gigabytes() > 0.0);
        // HVE has no accumulation buffers.
        let hve = hve_memory_per_gpu(&spec, 24, HVE_HALO_PM, 2);
        assert_eq!(hve.buffers, 0.0);
    }
}
