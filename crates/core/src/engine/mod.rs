//! The shared fault-tolerant iteration engine.
//!
//! Both reconstruction methods — Gradient Decomposition and the Halo Voxel
//! Exchange baseline — drive the same per-rank loop: initialise tile state,
//! run the per-iteration passes/exchanges, collect per-iteration costs, and
//! stitch the core tiles into the full volume. Before this module existed
//! that loop was duplicated in both solvers; now each method implements only
//! the [`SolverKernel`] trait (what *one iteration* does on *one rank*) and
//! [`IterationEngine`] owns everything around it:
//!
//! * the per-rank iteration loop and cost bookkeeping,
//! * gathering [`RankOutcome`]s and stitching the [`ReconstructionResult`],
//! * **recovery**, governed by [`RecoveryPolicy`]:
//!   - [`RecoveryPolicy::FailFast`] reproduces the historical behaviour —
//!     the first communication failure aborts the run (and adds zero
//!     overhead to the fault-free path; no extra barriers, no wrapping);
//!   - [`RecoveryPolicy::RetransmitThenRestart`] wraps every rank's
//!     communicator in [`ReliableComm`] (sequence-numbered ack/retransmit,
//!     healing lost messages in place) and additionally keeps a lightweight
//!     per-iteration checkpoint of each rank's tile state, so that a
//!     [`RankFailure`] that survives retransmission rolls the whole run back
//!     to the last consistent iteration boundary and re-runs it instead of
//!     aborting, up to `max_iteration_restarts` times.
//!
//! ### Why checkpoints are consistent
//!
//! In recovery mode the engine ends every iteration with a barrier and saves
//! the checkpoint only after the barrier completes. A barrier completes for
//! either every rank or no rank, so whenever an attempt fails, every rank's
//! latest checkpoint refers to the same iteration — the engine verifies this
//! invariant before restarting and escalates the original failure if it ever
//! does not hold. Restart attempts carry an increasing *epoch* into the
//! reliable layer's wire tags, so retransmit streams from different attempts
//! can never alias and seeded fault policies draw fresh decisions.
//!
//! [`ReliableComm`]: ptycho_cluster::ReliableComm

use crate::convergence::CostHistory;
use crate::stitch::stitch_tiles;
use crate::tiling::TileGrid;
use ptycho_array::Rect;
use ptycho_cluster::{
    CommBackend, CommError, MemoryTracker, RankComm, RankFailure, RankOutcome, ReliableComm,
    ReliableConfig, ReliableStats, SharedTile, TimeBreakdown,
};
use ptycho_fft::CArray3;
use std::sync::Mutex;

/// The outcome of a parallel reconstruction.
#[derive(Clone, Debug)]
pub struct ReconstructionResult {
    /// The stitched reconstruction volume (halos discarded).
    pub volume: CArray3,
    /// Global cost `F(V)` per iteration, summed over every probe location.
    pub cost_history: CostHistory,
    /// Per-rank time breakdowns.
    pub time: Vec<TimeBreakdown>,
    /// Per-rank memory accounting.
    pub memory: Vec<MemoryTracker>,
    /// The tile decomposition the reconstruction used.
    pub grid: TileGrid,
    /// What the engine's recovery machinery had to do (all zeros under
    /// [`RecoveryPolicy::FailFast`] and on fault-free runs).
    pub recovery: RecoveryReport,
}

impl ReconstructionResult {
    /// Average peak memory per rank in bytes.
    pub fn average_peak_memory_bytes(&self) -> f64 {
        ptycho_cluster::average_peak_bytes(&self.memory)
    }

    /// Worst-case (critical-path) time breakdown across ranks.
    pub fn critical_path(&self) -> TimeBreakdown {
        self.time
            .iter()
            .fold(TimeBreakdown::default(), |acc, t| acc.max_per_component(t))
    }
}

/// How the engine responds to a communication failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort on the first [`RankFailure`] (the historical behaviour, and the
    /// zero-overhead fault-free path).
    #[default]
    FailFast,
    /// Heal lost messages with the reliable-delivery layer; if a failure
    /// still escalates, roll back to the last consistent iteration boundary
    /// and re-run, at most `max_iteration_restarts` times.
    RetransmitThenRestart {
        /// Upper bound on checkpoint restarts before the failure is
        /// surfaced to the caller.
        max_iteration_restarts: usize,
    },
}

/// What the recovery machinery did during one reconstruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Checkpoint restarts the engine performed.
    pub iteration_restarts: usize,
    /// Reliable-delivery counters summed over every rank (of the successful
    /// attempt).
    pub reliable: ReliableStats,
}

impl RecoveryReport {
    /// True when the run needed no recovery work at all.
    pub fn is_clean(&self) -> bool {
        self.iteration_restarts == 0 && self.reliable == ReliableStats::default()
    }
}

/// What one reconstruction method contributes to the shared engine loop: the
/// per-rank tile state and the body of one iteration. Everything else —
/// iteration driving, cost collection, checkpointing, recovery, stitching —
/// lives in [`IterationEngine`].
pub trait SolverKernel: Sync {
    /// Rank-local state (tile worker, accumulation buffers, …). The lifetime
    /// ties the state to the kernel that created it.
    type State<'k>
    where
        Self: 'k;

    /// A lightweight snapshot of the mutable part of [`Self::State`], taken
    /// at iteration boundaries (for both methods: the tile volume).
    type Checkpoint: Send;

    /// The tile decomposition (one rank per tile).
    fn grid(&self) -> &TileGrid;

    /// Number of reconstruction iterations.
    fn iterations(&self) -> usize;

    /// Builds rank `ctx.rank()`'s state, registering its memory footprint
    /// with `ctx`'s tracker. Must not communicate.
    fn init<'k, C: RankComm<SharedTile>>(&'k self, ctx: &mut C) -> Self::State<'k>;

    /// Runs one full iteration on this rank, returning the rank's share of
    /// the iteration cost `F(V)`.
    fn run_iteration<C: RankComm<SharedTile>>(
        &self,
        ctx: &mut C,
        state: &mut Self::State<'_>,
        iteration: usize,
    ) -> Result<f64, CommError>;

    /// Snapshots the mutable state at an iteration boundary.
    fn checkpoint(&self, state: &Self::State<'_>) -> Self::Checkpoint;

    /// Restores a snapshot taken by [`Self::checkpoint`], resetting any
    /// intra-iteration scratch (accumulation buffers) to its boundary value.
    fn restore(&self, state: &mut Self::State<'_>, checkpoint: &Self::Checkpoint);

    /// Extracts the rank's core (non-halo) volume for stitching.
    fn core_volume(&self, state: &Self::State<'_>) -> CArray3;
}

/// What one rank hands back to the engine.
struct RankRun {
    core: CArray3,
    costs: Vec<f64>,
    stats: ReliableStats,
}

/// A rank's saved state at a completed iteration boundary.
struct CheckpointSlot<T> {
    /// Number of completed iterations (the next attempt resumes here).
    iteration: usize,
    /// Per-iteration costs accumulated so far.
    costs: Vec<f64>,
    state: T,
}

/// The shared driver executing a [`SolverKernel`] on a communication
/// backend under a [`RecoveryPolicy`].
pub struct IterationEngine<'k, K> {
    kernel: &'k K,
    policy: RecoveryPolicy,
}

impl<'k, K: SolverKernel> IterationEngine<'k, K> {
    /// An engine with the default [`RecoveryPolicy::FailFast`] policy.
    pub fn new(kernel: &'k K) -> Self {
        Self::with_policy(kernel, RecoveryPolicy::FailFast)
    }

    /// An engine with an explicit recovery policy.
    pub fn with_policy(kernel: &'k K, policy: RecoveryPolicy) -> Self {
        Self { kernel, policy }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Runs the reconstruction, one rank per tile, surfacing unrecovered
    /// communication failures as a [`RankFailure`].
    pub fn run<B: CommBackend>(&self, backend: &B) -> Result<ReconstructionResult, RankFailure> {
        match self.policy {
            RecoveryPolicy::FailFast => self.run_fail_fast(backend),
            RecoveryPolicy::RetransmitThenRestart {
                max_iteration_restarts,
            } => self.run_with_restart(backend, max_iteration_restarts),
        }
    }

    fn run_fail_fast<B: CommBackend>(
        &self,
        backend: &B,
    ) -> Result<ReconstructionResult, RankFailure> {
        let kernel = self.kernel;
        let iterations = kernel.iterations();
        let outcomes = backend.run::<SharedTile, RankRun, _>(kernel.grid().num_tiles(), |ctx| {
            let mut state = kernel.init(ctx);
            let mut costs = Vec::with_capacity(iterations);
            for iteration in 0..iterations {
                costs.push(kernel.run_iteration(ctx, &mut state, iteration)?);
            }
            Ok(RankRun {
                core: kernel.core_volume(&state),
                costs,
                stats: ReliableStats::default(),
            })
        })?;
        Ok(assemble(
            outcomes,
            kernel.grid().clone(),
            iterations,
            RecoveryReport::default(),
        ))
    }

    fn run_with_restart<B: CommBackend>(
        &self,
        backend: &B,
        max_iteration_restarts: usize,
    ) -> Result<ReconstructionResult, RankFailure> {
        // Recovery acts on communication *errors*; a backend that hangs on a
        // lost message (threaded without a receive timeout) never produces
        // one, so the policy would silently be inert. Refuse loudly instead.
        assert!(
            backend.loss_detection_enabled(),
            "RecoveryPolicy::RetransmitThenRestart requires a backend that turns lost messages \
             into errors; enable it with `with_recv_timeout(..)` or `with_loss_detection()`"
        );
        let kernel = self.kernel;
        let iterations = kernel.iterations();
        let ranks = kernel.grid().num_tiles();
        let slots: Vec<Mutex<Option<CheckpointSlot<K::Checkpoint>>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();
        let mut restarts = 0usize;
        loop {
            let config = ReliableConfig {
                epoch: restarts as u8,
                ..ReliableConfig::default()
            };
            let slots_ref = &slots;
            let attempt = backend.run::<SharedTile, RankRun, _>(ranks, |ctx| {
                let rank = ctx.rank();
                let mut comm = ReliableComm::with_config(ctx, config);
                let mut state = kernel.init(&mut comm);
                let (mut costs, start) = {
                    let slot = slots_ref[rank].lock().expect("checkpoint slot poisoned");
                    match slot.as_ref() {
                        Some(saved) => {
                            kernel.restore(&mut state, &saved.state);
                            (saved.costs.clone(), saved.iteration)
                        }
                        None => (Vec::with_capacity(iterations), 0),
                    }
                };
                for iteration in start..iterations {
                    costs.push(kernel.run_iteration(&mut comm, &mut state, iteration)?);
                    // The consistency barrier: no rank can proceed past this
                    // iteration until every rank has completed it, so every
                    // stored checkpoint always refers to the same iteration.
                    // It doubles as the quiesce point after which any of this
                    // rank's sends a peer still needs have been delivered.
                    comm.barrier()?;
                    *slots_ref[rank].lock().expect("checkpoint slot poisoned") =
                        Some(CheckpointSlot {
                            iteration: iteration + 1,
                            costs: costs.clone(),
                            state: kernel.checkpoint(&state),
                        });
                }
                Ok(RankRun {
                    core: kernel.core_volume(&state),
                    costs,
                    stats: comm.stats(),
                })
            });
            match attempt {
                Ok(outcomes) => {
                    let reliable = outcomes.iter().fold(ReliableStats::default(), |acc, o| {
                        acc.merge(&o.result.stats)
                    });
                    return Ok(assemble(
                        outcomes,
                        kernel.grid().clone(),
                        iterations,
                        RecoveryReport {
                            iteration_restarts: restarts,
                            reliable,
                        },
                    ));
                }
                Err(failure) => {
                    if restarts >= max_iteration_restarts {
                        return Err(failure);
                    }
                    // Restart only from a provably consistent boundary: every
                    // rank's latest checkpoint must agree on the iteration
                    // (None counts as iteration 0).
                    let boundary = |slot: &Mutex<Option<CheckpointSlot<K::Checkpoint>>>| {
                        slot.lock()
                            .expect("checkpoint slot poisoned")
                            .as_ref()
                            .map_or(0, |saved| saved.iteration)
                    };
                    let first = boundary(&slots[0]);
                    if slots.iter().any(|slot| boundary(slot) != first) {
                        return Err(failure);
                    }
                    restarts += 1;
                }
            }
        }
    }
}

/// Gathers per-rank outcomes into a [`ReconstructionResult`] — the single
/// assembly path shared by both solvers.
fn assemble(
    outcomes: Vec<RankOutcome<RankRun>>,
    grid: TileGrid,
    iterations: usize,
    recovery: RecoveryReport,
) -> ReconstructionResult {
    let mut cores: Vec<(Rect, CArray3)> = Vec::with_capacity(outcomes.len());
    let mut cost_per_iteration = vec![0.0; iterations];
    let mut time = Vec::with_capacity(outcomes.len());
    let mut memory = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        cores.push((grid.tile(outcome.rank).core, outcome.result.core));
        for (i, c) in outcome.result.costs.iter().enumerate() {
            cost_per_iteration[i] += c;
        }
        time.push(outcome.time);
        memory.push(outcome.memory);
    }
    let volume = stitch_tiles(&grid, &cores);
    ReconstructionResult {
        volume,
        cost_history: CostHistory::from_costs(cost_per_iteration),
        time,
        memory,
        grid,
        recovery,
    }
}
