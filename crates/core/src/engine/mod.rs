//! The shared fault-tolerant iteration engine.
//!
//! Both reconstruction methods — Gradient Decomposition and the Halo Voxel
//! Exchange baseline — drive the same per-rank loop: initialise tile state,
//! run the per-iteration passes/exchanges, collect per-iteration costs, and
//! stitch the core tiles into the full volume. Before this module existed
//! that loop was duplicated in both solvers; now each method implements only
//! the [`SolverKernel`] trait (what *one iteration* does on *one rank*) and
//! [`IterationEngine`] owns everything around it:
//!
//! * the per-rank iteration loop and cost bookkeeping,
//! * gathering [`RankOutcome`]s and stitching the [`ReconstructionResult`],
//! * **recovery**, governed by [`RecoveryPolicy`]:
//!   - [`RecoveryPolicy::FailFast`] reproduces the historical behaviour —
//!     the first communication failure aborts the run (and adds zero
//!     overhead to the fault-free path; no extra barriers, no wrapping);
//!   - [`RecoveryPolicy::RetransmitThenRestart`] wraps every rank's
//!     communicator in [`ReliableComm`] (sequence-numbered ack/retransmit,
//!     healing lost messages in place) and additionally keeps a lightweight
//!     per-iteration checkpoint of each rank's tile state, so that a
//!     [`RankFailure`] that survives retransmission rolls the whole run back
//!     to the last consistent iteration boundary and re-runs it instead of
//!     aborting, up to `max_iteration_restarts` times;
//!   - [`RecoveryPolicy::SubstituteSpare`] escalates one layer further:
//!     retransmission and checkpoint restarts handle *message* loss, but a
//!     **permanently dead rank** defeats both (the node cannot answer any
//!     retransmission, in any attempt). Under this policy the engine keeps a
//!     [`MembershipView`] — an epoch-numbered slot → node assignment table
//!     with a pool of standby spare nodes — plus a per-iteration ring
//!     heartbeat carried on control frames. When an attempt fails because a
//!     node died (the failure-detector verdict), the engine retires the
//!     node, promotes the lowest-numbered spare into its tile slot, bumps
//!     the membership epoch, and re-runs from the last consistency-barrier
//!     checkpoint — which the adopting spare restores exactly as the dead
//!     node would have, so the healed run is bit-identical to a fault-free
//!     one. An empty spare pool surfaces [`CommError::SparesExhausted`].
//!
//! ### Why checkpoints are consistent
//!
//! In recovery mode the engine ends every iteration with a barrier and saves
//! the checkpoint only after the barrier completes. A barrier completes for
//! either every rank or no rank, so whenever an attempt fails, every rank's
//! latest checkpoint refers to the same iteration — the engine verifies this
//! invariant before restarting and escalates the original failure if it ever
//! does not hold. Restart attempts carry an increasing *epoch* into the
//! reliable layer's wire tags, so retransmit streams from different attempts
//! can never alias and seeded fault policies draw fresh decisions. That wire
//! epoch counts *attempts*; the membership epoch counts *promotions* — the
//! two move independently (a restart without a death bumps only the former).
//!
//! [`ReliableComm`]: ptycho_cluster::ReliableComm
//! [`MembershipView`]: ptycho_cluster::MembershipView
//! [`CommError::SparesExhausted`]: ptycho_cluster::CommError::SparesExhausted

use crate::convergence::CostHistory;
use crate::durability::{
    ByteReader, ByteWriter, CheckpointPayload, CheckpointStore, DurabilityError, EpochManifest,
    RecoveredEpoch, SlotRecord,
};
use crate::stitch::stitch_tiles;
use crate::tiling::TileGrid;
use ptycho_array::Rect;
use ptycho_cluster::membership::frames;
use ptycho_cluster::{
    CommBackend, CommError, CrashPhase, MembershipError, MembershipView, MemoryTracker, RankComm,
    RankFailure, RankOutcome, ReliableComm, ReliableConfig, ReliableStats, SharedTile,
    TimeBreakdown,
};
use ptycho_fft::CArray3;
use ptycho_telemetry::{Telemetry, TelemetryEvent};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The outcome of a parallel reconstruction.
#[derive(Clone, Debug)]
pub struct ReconstructionResult {
    /// The stitched reconstruction volume (halos discarded).
    pub volume: CArray3,
    /// Global cost `F(V)` per iteration, summed over every probe location.
    pub cost_history: CostHistory,
    /// Per-rank time breakdowns.
    pub time: Vec<TimeBreakdown>,
    /// Per-rank memory accounting.
    pub memory: Vec<MemoryTracker>,
    /// The tile decomposition the reconstruction used.
    pub grid: TileGrid,
    /// What the engine's recovery machinery had to do (all zeros under
    /// [`RecoveryPolicy::FailFast`] and on fault-free runs).
    pub recovery: RecoveryReport,
}

impl ReconstructionResult {
    /// Average peak memory per rank in bytes.
    pub fn average_peak_memory_bytes(&self) -> f64 {
        ptycho_cluster::average_peak_bytes(&self.memory)
    }

    /// Worst-case (critical-path) time breakdown across ranks.
    pub fn critical_path(&self) -> TimeBreakdown {
        self.time
            .iter()
            .fold(TimeBreakdown::default(), |acc, t| acc.max_per_component(t))
    }
}

/// How the engine responds to a communication failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort on the first [`RankFailure`] (the historical behaviour, and the
    /// zero-overhead fault-free path).
    #[default]
    FailFast,
    /// Heal lost messages with the reliable-delivery layer; if a failure
    /// still escalates, roll back to the last consistent iteration boundary
    /// and re-run, at most `max_iteration_restarts` times.
    RetransmitThenRestart {
        /// Upper bound on checkpoint restarts before the failure is
        /// surfaced to the caller.
        max_iteration_restarts: usize,
    },
    /// Everything [`RecoveryPolicy::RetransmitThenRestart`] does, plus the
    /// escalation step for **permanently dead ranks**: a pool of `spares`
    /// standby nodes and a rank-membership table. When an attempt fails
    /// because a node died (rather than because messages were lost), a
    /// spare is promoted into the dead node's tile slot, adopts the slot's
    /// last consistency-barrier checkpoint, and the run re-runs under a
    /// bumped membership epoch — bit-identically to a fault-free run. The
    /// restart budget only counts restarts *not* caused by a death;
    /// substitutions are bounded by the spare pool instead.
    SubstituteSpare {
        /// Number of standby spare nodes available for promotion.
        spares: usize,
        /// Upper bound on checkpoint restarts for non-death failures.
        max_iteration_restarts: usize,
    },
}

/// What the recovery machinery did during one reconstruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Checkpoint restarts the engine performed (excluding substitutions).
    pub iteration_restarts: usize,
    /// Spare-rank promotions: how many permanently dead nodes were replaced
    /// by standby spares ([`RecoveryPolicy::SubstituteSpare`]).
    pub substitutions: usize,
    /// The membership epoch the run finished under (equals `substitutions`:
    /// one bump per promotion; 0 without the membership layer).
    pub membership_epoch: u64,
    /// Ring-liveness heartbeats sent across every rank of the successful
    /// attempt (membership mode only).
    pub heartbeats_sent: u64,
    /// Heartbeats observed from ring predecessors across every rank of the
    /// successful attempt (membership mode only).
    pub heartbeats_observed: u64,
    /// Reliable-delivery counters summed over every rank (of the successful
    /// attempt).
    pub reliable: ReliableStats,
}

impl RecoveryReport {
    /// True when the run needed no recovery work at all (heartbeats are
    /// routine liveness traffic, not recovery work).
    pub fn is_clean(&self) -> bool {
        self.iteration_restarts == 0
            && self.substitutions == 0
            && self.reliable == ReliableStats::default()
    }
}

/// One per-iteration progress event from one rank, emitted through
/// [`JobContext::progress`] right after the rank passes the iteration's
/// consistency barrier (or, under [`RecoveryPolicy::FailFast`], right after
/// the iteration body). Together with the job id (added by the service
/// layer) this is the stream a client tails to watch a reconstruction
/// converge.
#[derive(Clone, Copy, Debug)]
pub struct IterationProgress {
    /// The reporting rank (tile slot).
    pub rank: usize,
    /// The iteration that just completed (0-based).
    pub iteration: usize,
    /// Which recovery attempt the iteration ran under (0 = fault-free path).
    pub attempt: usize,
    /// The rank's share of the iteration cost `F(V)`.
    pub cost: f64,
    /// The rank's simulated time breakdown so far.
    pub time: TimeBreakdown,
    /// The rank's peak memory so far, in bytes.
    pub peak_bytes: usize,
}

/// Hooks tying one engine run to the job engine above it. All fields are
/// optional; [`JobContext::default`] is a plain standalone run and is what
/// [`IterationEngine::run`] uses — the hooks add no overhead when absent.
///
/// * `cancel` — cooperative cancellation: the engine polls the flag at each
///   iteration boundary and unwinds with [`CommError::Cancelled`] when it is
///   raised. Cancellation is not a fault: the recovery machinery never
///   spends restart budget or spares on it.
/// * `progress` — per-iteration [`IterationProgress`] events. Called from
///   rank worker threads, hence `Sync`.
/// * `spare_grant` — delegates the spare pool to an external owner (the
///   service's shared fleet). Called with the *job-local* dead node id
///   before each promotion; returning `false` means the pool is exhausted
///   and the run fails with [`CommError::SparesExhausted`]. When present,
///   the policy's own `spares` count is ignored — promotions are bounded by
///   the external pool (and the 8-bit attempt-epoch ceiling) instead, while
///   job-local spare numbering (`slots + k` for the k-th promotion) is
///   unchanged, which is what keeps a healed service run bit-identical to
///   the same job healed standalone.
#[derive(Clone, Copy, Default)]
pub struct JobContext<'a> {
    /// Raised by the job's owner to request cooperative cancellation.
    pub cancel: Option<&'a AtomicBool>,
    /// Raised by the job's owner to preempt the run at the next iteration
    /// boundary — same poll points as `cancel`, but surfaced as
    /// [`CommError::Preempted`] so the owner can splice newly ingested scan
    /// positions into the dataset and re-run, instead of tearing the job
    /// down. Like cancellation it is not a fault: the recovery machinery
    /// never spends restart budget or spares on it.
    pub preempt: Option<&'a AtomicBool>,
    /// Sink for per-iteration progress events.
    pub progress: Option<&'a (dyn Fn(IterationProgress) + Sync)>,
    /// External spare-pool arbiter: `grant(dead_local_node) -> granted`.
    pub spare_grant: Option<&'a (dyn Fn(usize) -> bool + Sync)>,
    /// Flight recorder for structured telemetry events. When present the
    /// engine stamps per-iteration and recovery events on each rank's
    /// stream (simulated clock, never wall time) and flushes the durable
    /// sink at every consistency barrier.
    pub telemetry: Option<&'a Telemetry>,
    /// Durable checkpointing: when present, every consistency barrier also
    /// persists each rank's checkpoint to the [`CheckpointStore`] and
    /// commits the epoch with an atomic manifest rename (see
    /// [`DurabilityHook`]). Requires a recovering policy — the barrier the
    /// store piggybacks on does not exist under
    /// [`RecoveryPolicy::FailFast`].
    pub durability: Option<DurabilityHook<'a>>,
}

/// Wires one engine run to an on-disk [`CheckpointStore`].
///
/// Persistence rides the existing consistency barrier: after every rank has
/// passed iteration `i`'s barrier, each rank durably writes its slot file, a
/// second barrier proves all slot files are on disk, rank 0 commits the
/// epoch manifest (the atomic rename that makes the epoch visible), and a
/// third barrier publishes the commit before any rank starts iteration
/// `i + 1`. The extra barriers cost only simulated time — they change no
/// message payloads, so the reconstruction stays bit-identical to a run
/// without the hook.
#[derive(Clone, Copy)]
pub struct DurabilityHook<'a> {
    /// The store epochs are committed to.
    pub store: &'a CheckpointStore,
    /// A previously recovered epoch to resume from: the engine prefills
    /// every rank's checkpoint slot, membership table, and recovery
    /// counters from it before the first attempt, so the resumed run
    /// continues exactly where the killed process left off.
    pub resume: Option<&'a RecoveredEpoch>,
    /// Fault injection: simulate a whole-process kill when committing the
    /// epoch with this store sequence number, at the given phase relative
    /// to the manifest rename. The run surfaces
    /// [`CommError::ProcessKilled`] on every rank.
    pub kill: Option<(u64, CrashPhase)>,
    /// The service-level job spec, already encoded; embedded opaquely in
    /// every manifest so `JobEngine::resume(dir)` can rebuild the job from
    /// the directory alone.
    pub spec: &'a [u8],
}

impl JobContext<'_> {
    /// True once the owner has requested cancellation.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// True once the owner has requested an iteration-boundary preemption.
    pub fn preempted(&self) -> bool {
        self.preempt
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    fn emit(&self, event: IterationProgress) {
        if let Some(sink) = self.progress {
            sink(event);
        }
    }
}

impl std::fmt::Debug for JobContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobContext")
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .field("preempt", &self.preempt.map(|c| c.load(Ordering::Relaxed)))
            .field("progress", &self.progress.is_some())
            .field("spare_grant", &self.spare_grant.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .field("durability", &self.durability.is_some())
            .finish()
    }
}

/// What one reconstruction method contributes to the shared engine loop: the
/// per-rank tile state and the body of one iteration. Everything else —
/// iteration driving, cost collection, checkpointing, recovery, stitching —
/// lives in [`IterationEngine`].
pub trait SolverKernel: Sync {
    /// Rank-local state (tile worker, accumulation buffers, …). The lifetime
    /// ties the state to the kernel that created it.
    type State<'k>
    where
        Self: 'k;

    /// A lightweight snapshot of the mutable part of [`Self::State`], taken
    /// at iteration boundaries (for both methods: the tile volume). The
    /// [`CheckpointPayload`] bound is what lets the durability layer write
    /// the snapshot to disk and restore it bit-identically in a resumed
    /// process.
    type Checkpoint: Send + CheckpointPayload;

    /// The tile decomposition (one rank per tile).
    fn grid(&self) -> &TileGrid;

    /// Number of reconstruction iterations.
    fn iterations(&self) -> usize;

    /// Builds rank `ctx.rank()`'s state, registering its memory footprint
    /// with `ctx`'s tracker. Must not communicate.
    fn init<'k, C: RankComm<SharedTile>>(&'k self, ctx: &mut C) -> Self::State<'k>;

    /// Runs one full iteration on this rank, returning the rank's share of
    /// the iteration cost `F(V)`.
    fn run_iteration<C: RankComm<SharedTile>>(
        &self,
        ctx: &mut C,
        state: &mut Self::State<'_>,
        iteration: usize,
    ) -> Result<f64, CommError>;

    /// Snapshots the mutable state at an iteration boundary.
    fn checkpoint(&self, state: &Self::State<'_>) -> Self::Checkpoint;

    /// Restores a snapshot taken by [`Self::checkpoint`], resetting any
    /// intra-iteration scratch (accumulation buffers) to its boundary value.
    fn restore(&self, state: &mut Self::State<'_>, checkpoint: &Self::Checkpoint);

    /// Extracts the rank's core (non-halo) volume for stitching.
    fn core_volume(&self, state: &Self::State<'_>) -> CArray3;

    /// The modeled compute time of one iteration on `rank`, in integer
    /// nanoseconds, used to advance the telemetry stream's simulated clock.
    /// Must be a pure function of the decomposition (deterministic across
    /// runs); the default of zero leaves the stream on communication time
    /// alone.
    fn modeled_compute_ns(&self, rank: usize) -> u64 {
        let _ = rank;
        0
    }
}

/// What one rank hands back to the engine.
struct RankRun {
    core: CArray3,
    costs: Vec<f64>,
    stats: ReliableStats,
    heartbeats_sent: u64,
    heartbeats_observed: u64,
}

/// A rank's saved state at a completed iteration boundary.
struct CheckpointSlot<T> {
    /// Number of completed iterations (the next attempt resumes here).
    iteration: usize,
    /// Per-iteration costs accumulated so far.
    costs: Vec<f64>,
    state: T,
}

/// The shared driver executing a [`SolverKernel`] on a communication
/// backend under a [`RecoveryPolicy`].
pub struct IterationEngine<'k, K> {
    kernel: &'k K,
    policy: RecoveryPolicy,
}

impl<'k, K: SolverKernel> IterationEngine<'k, K> {
    /// An engine with the default [`RecoveryPolicy::FailFast`] policy.
    pub fn new(kernel: &'k K) -> Self {
        Self::with_policy(kernel, RecoveryPolicy::FailFast)
    }

    /// An engine with an explicit recovery policy.
    pub fn with_policy(kernel: &'k K, policy: RecoveryPolicy) -> Self {
        Self { kernel, policy }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Runs the reconstruction, one rank per tile, surfacing unrecovered
    /// communication failures as a [`RankFailure`].
    pub fn run<B: CommBackend>(&self, backend: &B) -> Result<ReconstructionResult, RankFailure> {
        self.run_with_context(backend, &JobContext::default())
    }

    /// Runs the reconstruction under job-engine hooks: cooperative
    /// cancellation, per-iteration progress streaming, and an externally
    /// owned spare pool (see [`JobContext`]). [`IterationEngine::run`] is
    /// this with the default (empty) context.
    pub fn run_with_context<B: CommBackend>(
        &self,
        backend: &B,
        job: &JobContext<'_>,
    ) -> Result<ReconstructionResult, RankFailure> {
        match self.policy {
            RecoveryPolicy::FailFast => self.run_fail_fast(backend, job),
            RecoveryPolicy::RetransmitThenRestart {
                max_iteration_restarts,
            } => self.run_recovering(backend, job, max_iteration_restarts, None),
            RecoveryPolicy::SubstituteSpare {
                spares,
                max_iteration_restarts,
            } => self.run_recovering(backend, job, max_iteration_restarts, Some(spares)),
        }
    }

    fn run_fail_fast<B: CommBackend>(
        &self,
        backend: &B,
        job: &JobContext<'_>,
    ) -> Result<ReconstructionResult, RankFailure> {
        // Durable checkpoints piggyback on the recovering path's consistency
        // barrier; the fail-fast path has no barrier to hang them on, so a
        // silent no-op here would look like durability while providing none.
        assert!(
            job.durability.is_none(),
            "durable checkpoints require a recovering policy \
             (RetransmitThenRestart or SubstituteSpare): the fail-fast path \
             has no consistency barrier to persist at"
        );
        let kernel = self.kernel;
        let iterations = kernel.iterations();
        let outcomes = backend.run::<SharedTile, RankRun, _>(kernel.grid().num_tiles(), |ctx| {
            let rank = ctx.rank();
            let sink = job.telemetry.map(|t| t.sink(rank));
            if let Some(sink) = &sink {
                ctx.set_telemetry(sink.clone());
            }
            let mut state = kernel.init(ctx);
            let mut costs = Vec::with_capacity(iterations);
            for iteration in 0..iterations {
                if job.cancelled() {
                    return Err(CommError::Cancelled { rank: ctx.rank() });
                }
                if job.preempted() {
                    return Err(CommError::Preempted { rank: ctx.rank() });
                }
                if let Some(sink) = &sink {
                    sink.record_at_comm_ns(
                        ctx.clock_mut().comm_ns(),
                        TelemetryEvent::IterationBegin {
                            iteration: iteration as u64,
                            attempt: 0,
                        },
                    );
                }
                costs.push(kernel.run_iteration(ctx, &mut state, iteration)?);
                if let Some(sink) = &sink {
                    sink.add_compute_ns(kernel.modeled_compute_ns(rank));
                    sink.set_comm_ns(ctx.clock_mut().comm_ns());
                    let (comm_ns, compute_ns) = sink.sim_parts();
                    sink.record(TelemetryEvent::IterationEnd {
                        iteration: iteration as u64,
                        attempt: 0,
                        cost: costs[iteration],
                        compute_ns,
                        comm_ns,
                    });
                }
                job.emit(IterationProgress {
                    rank: ctx.rank(),
                    iteration,
                    attempt: 0,
                    cost: costs[iteration],
                    time: ctx.clock_mut().breakdown(),
                    peak_bytes: ctx.memory_mut().peak_total(),
                });
            }
            Ok(RankRun {
                core: kernel.core_volume(&state),
                costs,
                stats: ReliableStats::default(),
                heartbeats_sent: 0,
                heartbeats_observed: 0,
            })
        });
        // The rank threads are joined: flushing here cannot race recording.
        if let Some(telemetry) = job.telemetry {
            telemetry.flush_all();
        }
        Ok(assemble(
            outcomes?,
            kernel.grid().clone(),
            iterations,
            RecoveryReport::default(),
        ))
    }

    /// The shared recovery driver behind both recovering policies.
    ///
    /// With `spares: None` this is plain retransmit + checkpoint restart.
    /// With `spares: Some(n)` the engine additionally keeps a
    /// [`MembershipView`] mapping each tile *slot* to the physical *node*
    /// running it, sends a per-iteration ring heartbeat on control frames,
    /// and — when an attempt fails because a node died — promotes a spare
    /// into the dead node's slot before re-running. The **checkpoint store
    /// is keyed by slot**, so the adopting spare restores exactly the state
    /// the dead node saved at the last consistency barrier.
    fn run_recovering<B: CommBackend>(
        &self,
        backend: &B,
        job: &JobContext<'_>,
        max_iteration_restarts: usize,
        spares: Option<usize>,
    ) -> Result<ReconstructionResult, RankFailure> {
        // Recovery acts on communication *errors*; a backend that hangs on a
        // lost message (threaded without a receive timeout) never produces
        // one, so the policy would silently be inert. Refuse loudly instead.
        assert!(
            backend.loss_detection_enabled(),
            "recovering policies require a backend that turns lost messages into errors; \
             enable it with `with_recv_timeout(..)` or `with_loss_detection()`"
        );
        let kernel = self.kernel;
        let iterations = kernel.iterations();
        let ranks = kernel.grid().num_tiles();
        // With an external spare arbiter, the pool bound lives outside the
        // engine: size the local view at the attempt-epoch ceiling (the hard
        // upper bound on promotions anyway) so the arbiter alone decides
        // exhaustion. Promotion numbering is unaffected — the k-th promotion
        // is always local node `ranks + k` whatever the pool size — which is
        // what keeps service-healed runs bit-identical to standalone ones.
        let spares = spares.map(|pool| {
            if job.spare_grant.is_some() {
                frames::MAX_ATTEMPT_EPOCH as usize + 1
            } else {
                pool
            }
        });
        let mut membership = spares.map(|pool| MembershipView::new(ranks, pool));
        let slots: Vec<Mutex<Option<CheckpointSlot<K::Checkpoint>>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();
        let mut restarts = 0usize;
        let mut substitutions = 0usize;
        let mut attempt_index = 0usize;
        // Resuming from disk: prefill every rank's checkpoint slot, the
        // membership table, and the recovery counters from the recovered
        // epoch, so the existing restore-from-slot path picks the run up
        // exactly where the killed process committed it. Fault cursors are
        // handed to each rank once (first post-resume attempt) so seeded
        // fault decisions that already fired before the kill do not re-fire.
        let resume_seq = job.durability.as_ref().and_then(|hook| {
            let epoch = hook.resume?;
            assert_eq!(
                epoch.slots.len(),
                ranks,
                "recovered epoch has {} slots but the decomposition has {} ranks",
                epoch.slots.len(),
                ranks
            );
            for (slot, record) in epoch.slots.iter().enumerate() {
                let mut reader = ByteReader::new(&record.state, Path::new("recovered slot state"));
                let state = K::Checkpoint::decode(&mut reader)
                    .expect("recovered checkpoint state does not decode for this kernel");
                *slots[slot].lock().expect("checkpoint slot poisoned") = Some(CheckpointSlot {
                    iteration: record.iteration,
                    costs: record.costs.clone(),
                    state,
                });
            }
            if membership.is_some() {
                membership = Some(epoch.manifest.membership.clone());
            }
            restarts = epoch.manifest.restarts;
            substitutions = epoch.manifest.substitutions;
            attempt_index = epoch.manifest.attempt_index as usize;
            Some(epoch.manifest.seq)
        });
        let resume_cursors: Vec<Mutex<Option<ptycho_cluster::FaultCursor>>> = (0..ranks)
            .map(|slot| {
                Mutex::new(
                    job.durability
                        .as_ref()
                        .and_then(|hook| hook.resume)
                        .and_then(|epoch| epoch.slots[slot].cursor.clone()),
                )
            })
            .collect();
        let start_attempt = attempt_index;
        loop {
            // The wire epoch (and the heartbeat tags' attempt field) is 8
            // bits wide; make the ceiling explicit instead of letting the
            // cast wrap tags back onto attempt 0's and silently re-drawing
            // its fault decisions. 256 attempts means a restart budget or a
            // spare pool far beyond what the u8 wire-epoch scheme supports.
            assert!(
                attempt_index as u64 <= frames::MAX_ATTEMPT_EPOCH,
                "recovery exceeded {} attempts: the 8-bit wire-epoch space is exhausted \
                 (restart budget and spare pool must stay below that combined)",
                frames::MAX_ATTEMPT_EPOCH + 1
            );
            let config = ReliableConfig {
                epoch: attempt_index as u8,
                ..ReliableConfig::default()
            };
            // The attempt's frozen membership: slot -> node. `None` outside
            // membership mode, where slot == node throughout.
            let assignment: Option<Vec<usize>> =
                membership.as_ref().map(|view| view.assignment().to_vec());
            let membership_epoch = membership.as_ref().map_or(0, MembershipView::epoch);
            // Nodes whose death was observed this attempt — the failure
            // detector's verdict registry, filled by the dying rank itself
            // (the backend is the runtime: it knows the node's communicator
            // went dead, like an MPI runtime revoking a communicator).
            let dead_nodes: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let slots_ref = &slots;
            let assignment_ref = &assignment;
            let dead_ref = &dead_nodes;
            let attempt_number = attempt_index;
            // Counters and membership as the manifest must record them: the
            // state a resumed process needs to continue this attempt.
            let restarts_now = restarts;
            let substitutions_now = substitutions;
            let view_snapshot = membership.clone();
            let view_ref = &view_snapshot;
            // Set by rank 0 when a simulated process kill strikes its commit;
            // every rank observes it after the commit barrier and unwinds
            // together, so the "process" dies as a unit.
            let killed = AtomicBool::new(false);
            let killed_ref = &killed;
            let durability = job.durability;
            let resume_cursors_ref = &resume_cursors;
            let attempt = backend.run::<SharedTile, RankRun, _>(ranks, |ctx| {
                let slot = ctx.rank();
                let node = assignment_ref.as_ref().map_or(slot, |a| a[slot]);
                if assignment_ref.is_some() {
                    // Node-keyed faults (rank death) must follow the node:
                    // a spare adopting this slot must not inherit a death
                    // aimed at its predecessor.
                    ctx.set_fault_node(node);
                }
                let mut comm = ReliableComm::with_config(ctx, config);
                // Telemetry streams are keyed by *node*: a promoted spare
                // writes its own stream, leaving the dead node's record of
                // its final attempt intact for post-mortems.
                let sink = job.telemetry.map(|t| t.sink(node));
                if let Some(sink) = &sink {
                    comm.set_telemetry(sink.clone());
                }
                let mut state = kernel.init(&mut comm);
                let (mut costs, start) = {
                    let slot = slots_ref[slot].lock().expect("checkpoint slot poisoned");
                    match slot.as_ref() {
                        Some(saved) => {
                            kernel.restore(&mut state, &saved.state);
                            (saved.costs.clone(), saved.iteration)
                        }
                        None => (Vec::with_capacity(iterations), 0),
                    }
                };
                // First attempt of a resumed process: hand the rank its
                // persisted fault cursor (so seeded fault decisions continue
                // where the killed process stopped, instead of re-firing)
                // and record the restore. The cell is taken once — later
                // attempts start fresh harnesses exactly as they would in an
                // uninterrupted run.
                if let Some(seq) = resume_seq {
                    if let Some(cursor) = resume_cursors_ref[slot]
                        .lock()
                        .expect("resume cursor poisoned")
                        .take()
                    {
                        comm.set_fault_cursor(&cursor);
                    }
                    if attempt_number == start_attempt {
                        if let Some(sink) = &sink {
                            sink.record(TelemetryEvent::CheckpointRestored {
                                iteration: start as u64,
                                seq,
                            });
                        }
                    }
                }
                let heartbeats = assignment_ref.is_some() && ranks > 1;
                let mut heartbeats_sent = 0u64;
                let mut heartbeats_observed = 0u64;
                let result = (|| {
                    for iteration in start..iterations {
                        // The cancellation poll point: before starting new
                        // work, and again at the iteration boundary below.
                        // Every rank polls the same flag, so either all
                        // ranks unwind here together or the stragglers'
                        // barrier fails — both cases are mapped to a
                        // cancelled (not faulted) run by the failure branch.
                        if job.cancelled() {
                            return Err(CommError::Cancelled { rank: slot });
                        }
                        // The ingestion preemption point: like cancellation,
                        // but the owner intends to splice new scan positions
                        // and re-run rather than tear the job down.
                        if job.preempted() {
                            return Err(CommError::Preempted { rank: slot });
                        }
                        if let Some(sink) = &sink {
                            sink.record_at_comm_ns(
                                comm.clock_mut().comm_ns(),
                                TelemetryEvent::IterationBegin {
                                    iteration: iteration as u64,
                                    attempt: attempt_number as u64,
                                },
                            );
                        }
                        costs.push(kernel.run_iteration(&mut comm, &mut state, iteration)?);
                        if let Some(sink) = &sink {
                            sink.add_compute_ns(kernel.modeled_compute_ns(slot));
                            sink.set_comm_ns(comm.clock_mut().comm_ns());
                            let (comm_ns, compute_ns) = sink.sim_parts();
                            sink.record(TelemetryEvent::IterationEnd {
                                iteration: iteration as u64,
                                attempt: attempt_number as u64,
                                cost: costs[iteration],
                                compute_ns,
                                comm_ns,
                            });
                        }
                        if heartbeats {
                            // Ring liveness beat, sent *before* the barrier
                            // so a death here cannot leave this slot's
                            // checkpoint ahead of its peers'. Control
                            // frames bypass the reliable layer's sequence
                            // accounting entirely.
                            let tag = frames::heartbeat_tag(
                                config.epoch,
                                membership_epoch,
                                iteration as u64,
                            );
                            comm.isend_control((slot + 1) % ranks, tag, SharedTile::default());
                            heartbeats_sent += 1;
                            if let Some(sink) = &sink {
                                sink.record_at_comm_ns(
                                    comm.clock_mut().comm_ns(),
                                    TelemetryEvent::HeartbeatSent {
                                        to: ((slot + 1) % ranks) as u64,
                                        iteration: iteration as u64,
                                    },
                                );
                            }
                        }
                        if let Some(sink) = &sink {
                            sink.record_at_comm_ns(
                                comm.clock_mut().comm_ns(),
                                TelemetryEvent::BarrierWait {
                                    iteration: iteration as u64,
                                },
                            );
                            // Publish the durability watermark *before* the
                            // barrier: everything recorded so far is covered
                            // by this generation's post-barrier flush.
                            sink.publish_watermark(iteration as u64);
                        }
                        // The consistency barrier: no rank can proceed past
                        // this iteration until every rank has completed it,
                        // so every stored checkpoint always refers to the
                        // same iteration. It doubles as the quiesce point
                        // after which any of this rank's sends a peer still
                        // needs have been delivered.
                        comm.barrier()?;
                        if slot == 0 {
                            if let Some(telemetry) = job.telemetry {
                                // Every rank published its watermark before
                                // entering the barrier this rank just left,
                                // so the flushed prefix is consistent (and
                                // the generation parity keeps a racing next
                                // iteration from moving it underneath us).
                                telemetry.flush_consistent(iteration as u64);
                            }
                        }
                        if heartbeats {
                            // A completed barrier implies the predecessor's
                            // beat was sent; its absence after the barrier
                            // would mark the predecessor suspect.
                            let tag = frames::heartbeat_tag(
                                config.epoch,
                                membership_epoch,
                                iteration as u64,
                            );
                            let prev = (slot + ranks - 1) % ranks;
                            if comm.try_recv_control(prev, tag).is_some() {
                                heartbeats_observed += 1;
                                if let Some(sink) = &sink {
                                    sink.record_at_comm_ns(
                                        comm.clock_mut().comm_ns(),
                                        TelemetryEvent::HeartbeatObserved {
                                            from: prev as u64,
                                            iteration: iteration as u64,
                                        },
                                    );
                                }
                            } else if let Some(sink) = &sink {
                                let prev_node = assignment_ref.as_ref().map_or(prev, |a| a[prev]);
                                sink.record_at_comm_ns(
                                    comm.clock_mut().comm_ns(),
                                    TelemetryEvent::RankSuspected {
                                        node: prev_node as u64,
                                        iteration: iteration as u64,
                                    },
                                );
                            }
                        }
                        let snapshot = kernel.checkpoint(&state);
                        // Durable persistence rides the barrier just crossed:
                        // every rank's in-flight state for iteration
                        // `iteration` is final, so the slot files written now
                        // form a globally consistent cut. Two more barriers
                        // order (a) all slot files before the manifest commit
                        // and (b) the commit before anyone proceeds — they
                        // carry no payloads, so the reconstruction stays
                        // bit-identical to an undurable run.
                        if let Some(hook) = &durability {
                            let seq = hook.store.next_seq();
                            let mut encoded = ByteWriter::new();
                            snapshot.encode(&mut encoded);
                            let record = SlotRecord {
                                iteration: iteration + 1,
                                costs: costs.clone(),
                                cursor: comm.fault_cursor(),
                                state: encoded.into_bytes(),
                            };
                            let bytes = hook
                                .store
                                .write_slot(seq, slot, &record)
                                .unwrap_or_else(|e| panic!("checkpoint slot write failed: {e}"));
                            comm.barrier()?;
                            if slot == 0 {
                                let manifest = EpochManifest {
                                    seq,
                                    iteration: iteration + 1,
                                    attempt_index: attempt_number as u8,
                                    restarts: restarts_now,
                                    substitutions: substitutions_now,
                                    membership: view_ref
                                        .clone()
                                        .unwrap_or_else(|| MembershipView::new(ranks, 0)),
                                    spec: hook.spec.to_vec(),
                                };
                                let crash = hook
                                    .kill
                                    .filter(|&(kill_seq, _)| kill_seq == seq)
                                    .map(|(_, phase)| phase);
                                match hook.store.commit(&manifest, crash) {
                                    Ok(()) => {}
                                    Err(DurabilityError::SimulatedCrash { .. }) => {
                                        killed_ref.store(true, Ordering::SeqCst);
                                    }
                                    Err(e) => panic!("checkpoint commit failed: {e}"),
                                }
                            }
                            comm.barrier()?;
                            if killed_ref.load(Ordering::SeqCst) {
                                return Err(CommError::ProcessKilled { rank: slot, seq });
                            }
                            if let Some(sink) = &sink {
                                sink.record_at_comm_ns(
                                    comm.clock_mut().comm_ns(),
                                    TelemetryEvent::CheckpointPersisted {
                                        iteration: (iteration + 1) as u64,
                                        seq,
                                        bytes,
                                    },
                                );
                            }
                        }
                        *slots_ref[slot].lock().expect("checkpoint slot poisoned") =
                            Some(CheckpointSlot {
                                iteration: iteration + 1,
                                costs: costs.clone(),
                                state: snapshot,
                            });
                        if let Some(sink) = &sink {
                            sink.record_at_comm_ns(
                                comm.clock_mut().comm_ns(),
                                TelemetryEvent::Checkpoint {
                                    iteration: iteration as u64,
                                },
                            );
                        }
                        job.emit(IterationProgress {
                            rank: slot,
                            iteration,
                            attempt: attempt_number,
                            cost: costs[iteration],
                            time: comm.clock_mut().breakdown(),
                            peak_bytes: comm.memory_mut().peak_total(),
                        });
                    }
                    Ok(())
                })();
                match result {
                    Ok(()) => Ok(RankRun {
                        core: kernel.core_volume(&state),
                        costs,
                        stats: comm.stats(),
                        heartbeats_sent,
                        heartbeats_observed,
                    }),
                    Err(error) => {
                        if assignment_ref.is_some() {
                            if let CommError::RankDead { .. } = error {
                                // The dying rank registers the verdict for
                                // the engine's substitution step.
                                dead_ref.lock().expect("death registry poisoned").push(node);
                            }
                        }
                        Err(error)
                    }
                }
            });
            // Rank threads are joined at this point: a driver-side flush (or
            // stream write) cannot race rank-side recording.
            let flush_telemetry = || {
                if let Some(telemetry) = job.telemetry {
                    telemetry.flush_all();
                }
            };
            match attempt {
                Ok(outcomes) => {
                    let reliable = outcomes.iter().fold(ReliableStats::default(), |acc, o| {
                        acc.merge(&o.result.stats)
                    });
                    let heartbeats_sent = outcomes.iter().map(|o| o.result.heartbeats_sent).sum();
                    let heartbeats_observed =
                        outcomes.iter().map(|o| o.result.heartbeats_observed).sum();
                    flush_telemetry();
                    return Ok(assemble(
                        outcomes,
                        kernel.grid().clone(),
                        iterations,
                        RecoveryReport {
                            iteration_restarts: restarts,
                            substitutions,
                            membership_epoch,
                            heartbeats_sent,
                            heartbeats_observed,
                            reliable,
                        },
                    ));
                }
                Err(failure) => {
                    // Cancellation is not a fault. Some ranks observe the
                    // flag and unwind with `Cancelled`; ranks already parked
                    // in a receive or barrier fail with a timeout/deadlock
                    // instead. Either way, once the flag is up the run is
                    // over — no restart budget, no substitutions.
                    if job.cancelled() || matches!(failure.error, CommError::Cancelled { .. }) {
                        flush_telemetry();
                        return Err(RankFailure {
                            rank: failure.rank,
                            error: CommError::Cancelled { rank: failure.rank },
                            failed_ranks: failure.failed_ranks,
                        });
                    }
                    // A simulated process kill is terminal by definition:
                    // the "process" is dead, and resuming it is the caller's
                    // job (`JobEngine::resume(dir)`), not this loop's.
                    if let CommError::ProcessKilled { .. } = failure.error {
                        flush_telemetry();
                        return Err(failure);
                    }
                    // Preemption mirrors cancellation: the owner raised the
                    // flag to splice ingested scan positions, so the run is
                    // over here and the owner re-runs it. Ranks that were
                    // already parked in a receive or barrier when the flag
                    // went up fail with a timeout instead — map those back
                    // to the preemption that caused them.
                    if job.preempted() || matches!(failure.error, CommError::Preempted { .. }) {
                        flush_telemetry();
                        return Err(RankFailure {
                            rank: failure.rank,
                            error: CommError::Preempted { rank: failure.rank },
                            failed_ranks: failure.failed_ranks,
                        });
                    }
                    // Restart only from a provably consistent boundary: every
                    // rank's latest checkpoint must agree on the iteration
                    // (None counts as iteration 0).
                    let boundary = |slot: &Mutex<Option<CheckpointSlot<K::Checkpoint>>>| {
                        slot.lock()
                            .expect("checkpoint slot poisoned")
                            .as_ref()
                            .map_or(0, |saved| saved.iteration)
                    };
                    let first = boundary(&slots[0]);
                    if slots.iter().any(|slot| boundary(slot) != first) {
                        flush_telemetry();
                        return Err(failure);
                    }
                    let mut deaths =
                        std::mem::take(&mut *dead_nodes.lock().expect("death registry poisoned"));
                    deaths.sort_unstable();
                    deaths.dedup();
                    if deaths.is_empty() {
                        // A message-loss failure: plain checkpoint restart,
                        // bounded by the restart budget.
                        if restarts >= max_iteration_restarts {
                            flush_telemetry();
                            return Err(failure);
                        }
                        restarts += 1;
                    } else {
                        // The failure-detector verdict names dead nodes:
                        // promote one spare per death. The restart budget is
                        // untouched — substitutions are bounded by the pool.
                        let view = membership
                            .as_mut()
                            .expect("deaths are only registered in membership mode");
                        for node in deaths {
                            // Under an external arbiter, every promotion
                            // must first be granted a node from the shared
                            // pool; a refusal is pool exhaustion.
                            if let Some(grant) = job.spare_grant {
                                if !grant(node) {
                                    flush_telemetry();
                                    return Err(RankFailure {
                                        rank: failure.rank,
                                        error: CommError::SparesExhausted {
                                            rank: failure.rank,
                                            dead_node: node,
                                        },
                                        failed_ranks: failure.failed_ranks,
                                    });
                                }
                            }
                            match view.substitute(node) {
                                Ok((slot, replacement)) => {
                                    substitutions += 1;
                                    if let Some(telemetry) = job.telemetry {
                                        // Recorded on the *new* node's stream
                                        // (the dead node's stream keeps its
                                        // final attempt for post-mortems).
                                        telemetry.sink(replacement).record(
                                            TelemetryEvent::SparePromoted {
                                                slot: slot as u64,
                                                node: replacement as u64,
                                            },
                                        );
                                    }
                                }
                                Err(MembershipError::SparesExhausted { dead_node }) => {
                                    flush_telemetry();
                                    return Err(RankFailure {
                                        rank: failure.rank,
                                        error: CommError::SparesExhausted {
                                            rank: failure.rank,
                                            dead_node,
                                        },
                                        failed_ranks: failure.failed_ranks,
                                    });
                                }
                                Err(MembershipError::NotAssigned { .. }) => {
                                    // A node can only die while assigned;
                                    // anything else is a driver bug.
                                    unreachable!("dead node was not assigned a slot")
                                }
                            }
                        }
                    }
                    attempt_index += 1;
                }
            }
        }
    }
}

/// Gathers per-rank outcomes into a [`ReconstructionResult`] — the single
/// assembly path shared by both solvers.
fn assemble(
    outcomes: Vec<RankOutcome<RankRun>>,
    grid: TileGrid,
    iterations: usize,
    recovery: RecoveryReport,
) -> ReconstructionResult {
    let mut cores: Vec<(Rect, CArray3)> = Vec::with_capacity(outcomes.len());
    let mut cost_per_iteration = vec![0.0; iterations];
    let mut time = Vec::with_capacity(outcomes.len());
    let mut memory = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        cores.push((grid.tile(outcome.rank).core, outcome.result.core));
        for (i, c) in outcome.result.costs.iter().enumerate() {
            cost_per_iteration[i] += c;
        }
        time.push(outcome.time);
        memory.push(outcome.memory);
    }
    let volume = stitch_tiles(&grid, &cores);
    ReconstructionResult {
        volume,
        cost_history: CostHistory::from_costs(cost_per_iteration),
        time,
        memory,
        grid,
        recovery,
    }
}
