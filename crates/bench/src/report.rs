//! Plain-text tables for the experiment harnesses.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row of already-formatted cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&format_row(&self.headers));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals, using `NA` for NaN
/// (matching the paper's "NA" entries for infeasible configurations).
pub fn fmt_or_na(value: Option<f64>, decimals: usize) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.decimals$}"),
        _ => "NA".to_string(),
    }
}

/// Formats gigabytes/minutes/percent compactly.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut table = Table::new("demo").headers(&["GPUs", "Runtime (min)"]);
        table.row(vec!["6".into(), "5543.0".into()]);
        table.row(vec!["4158".into(), "2.2".into()]);
        let text = table.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("GPUs"));
        assert!(text.contains("4158"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_or_na(Some(1.234), 2), "1.23");
        assert_eq!(fmt_or_na(None, 2), "NA");
        assert_eq!(fmt_or_na(Some(f64::NAN), 1), "NA");
        assert_eq!(fmt(0.5, 1), "0.5");
    }
}
