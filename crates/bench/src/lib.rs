//! Experiment harnesses that regenerate every table and figure of the paper's
//! evaluation section, plus plain-text reporting helpers.
//!
//! Each binary in `src/bin/` (one per table/figure) is a thin wrapper around a
//! function in [`experiments`]; the functions are also exercised by the
//! workspace integration tests so that the reproduced *shapes* (who wins, by
//! roughly what factor, where the crossovers fall) are checked automatically.
//!
//! # Quick start
//!
//! Regenerate Table I (dataset geometry) and the Table II scaling rows for
//! the small Lead Titanate dataset, then render them as plain text:
//!
//! ```
//! use ptycho_bench::experiments::{scaling_tables, table1, PaperDataset};
//!
//! let table = table1();
//! assert_eq!(table.len(), 2); // small + large Lead Titanate rows
//! println!("{}", table.render());
//!
//! let (gd_rows, hve_rows) = scaling_tables(PaperDataset::Small);
//! // Gradient decomposition fills every GPU-count column; the halo-exchange
//! // baseline leaves "NA" cells where no feasible tiling exists.
//! let feasible = |rows: &ptycho_bench::experiments::ScalingRows| {
//!     rows.points.iter().filter(|p| p.is_some()).count()
//! };
//! assert!(feasible(&gd_rows) >= feasible(&hve_rows));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod report;
