//! Experiment harnesses that regenerate every table and figure of the paper's
//! evaluation section, plus plain-text reporting helpers.
//!
//! Each binary in `src/bin/` (one per table/figure) is a thin wrapper around a
//! function in [`experiments`]; the functions are also exercised by the
//! workspace integration tests so that the reproduced *shapes* (who wins, by
//! roughly what factor, where the crossovers fall) are checked automatically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
