//! The benchmark regression gate.
//!
//! `cargo bench -p ptycho-bench` (with `CRITERION_SUMMARY_PATH` set) emits
//! one JSON line per benchmark; this module parses those lines, compares
//! them against the committed `BENCH_baseline.json`, and flags hot-path
//! regressions. The comparison is deliberately *generous*: timings move
//! between machines and CI runners, so only a multi-x slowdown on a
//! non-trivial benchmark fails the gate (see [`GateConfig`]). The
//! `bench_gate` binary wraps this module for CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Mean nanoseconds per benchmark label.
pub type BenchResults = BTreeMap<String, f64>;

/// Tolerances of the regression gate.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// A benchmark fails when `current > factor * baseline`.
    pub factor: f64,
    /// Per-label overrides of [`GateConfig::factor`]: some keys legitimately
    /// need a different budget than the global one — e.g. baseline entries
    /// recorded *before* an optimisation landed hold pre-optimisation
    /// timings, so the current run sits far below them and a tight factor
    /// would never fire anyway, while throughput-style keys on shared CI
    /// runners may need extra headroom.
    pub per_label: BTreeMap<String, f64>,
    /// Benchmarks with a baseline mean below this many nanoseconds are
    /// ignored — micro-timings are dominated by noise.
    pub min_baseline_ns: f64,
}

impl GateConfig {
    /// The slowdown budget for one benchmark label.
    pub fn factor_for(&self, label: &str) -> f64 {
        self.per_label.get(label).copied().unwrap_or(self.factor)
    }
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            // Generous: catches order-of-magnitude hot-path regressions (an
            // accidentally quadratic loop, a lost parallel path) without
            // tripping on machine-to-machine variance.
            factor: 4.0,
            per_label: BTreeMap::new(),
            min_baseline_ns: 50_000.0,
        }
    }
}

/// The built-in per-key budgets for baseline entries that deliberately hold
/// **pre-optimisation** timings (the pre-PR-4 allocating foils; see the
/// "Bench regression gate" section of ARCHITECTURE.md). Their committed
/// means sit far above what the optimised code paths produce, so they keep
/// the generous 4× budget explicitly: a future runner-native re-baseline
/// that tightens the *global* factor must not start failing the keys whose
/// whole point is to stay slow relative to their optimised counterparts.
///
/// `bench_gate` merges these **under** the `PTYCHO_BENCH_GATE_FACTORS`
/// environment overrides — an operator-supplied budget for the same key
/// always wins.
pub fn default_per_label_factors() -> BTreeMap<String, f64> {
    // The allocating by-value FFT wrappers (foil for `roundtrip_in_place/*`)
    // and the deep payload copy that `SharedTile` aliasing replaced.
    const PRE_OPTIMISATION_KEYS: &[&str] = &[
        "fft_workspace/roundtrip_by_value/64",
        "fft_workspace/roundtrip_by_value/128",
        "fft_workspace/roundtrip_by_value/256",
        "payload_clone/deep_vec_1mib",
    ];
    // The durability keys are filesystem-bound (fsync + atomic rename per
    // epoch), so their run-to-run variance on shared CI disks is far wider
    // than the compute benches'. They keep an explicit 6× budget: wide
    // enough to ride out a noisy disk, still tight enough to catch a lost
    // batch (per-slot fsync in a loop) or an accidental full-store rescan.
    const FILESYSTEM_BOUND_KEYS: &[&str] =
        &["durability/checkpoint_persist", "durability/resume_cold"];
    // The trace-analysis passes run over a large heap-allocated record set,
    // so allocator and cache behaviour on shared runners spreads their
    // run-to-run means more than the pure-compute benches; they hold an
    // explicit 4x budget so a future global tightening cannot silently
    // squeeze them below their observed variance.
    const ANALYSIS_KEYS: &[&str] = &[
        "telemetry_analysis/span_build",
        "telemetry_analysis/critical_path",
    ];
    PRE_OPTIMISATION_KEYS
        .iter()
        .chain(ANALYSIS_KEYS)
        .map(|label| (label.to_string(), 4.0))
        .chain(
            FILESYSTEM_BOUND_KEYS
                .iter()
                .map(|label| (label.to_string(), 6.0)),
        )
        .collect()
}

/// Parses per-label factor overrides from the `PTYCHO_BENCH_GATE_FACTORS`
/// environment format: comma-separated `label=factor` pairs, e.g.
/// `jobs/throughput_50=8,engine_recovery/gd_2x2_fail_fast_lockstep=6`.
/// Malformed pairs are ignored rather than failing the gate.
pub fn parse_factor_overrides(text: &str) -> BTreeMap<String, f64> {
    let mut overrides = BTreeMap::new();
    for pair in text.split(',') {
        let Some((label, factor)) = pair.rsplit_once('=') else {
            continue;
        };
        let label = label.trim();
        if label.is_empty() {
            continue;
        }
        if let Ok(factor) = factor.trim().parse::<f64>() {
            if factor > 0.0 {
                overrides.insert(label.to_string(), factor);
            }
        }
    }
    overrides
}

/// One flagged regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The benchmark label.
    pub label: String,
    /// Baseline mean in nanoseconds.
    pub baseline_ns: f64,
    /// Current mean in nanoseconds.
    pub current_ns: f64,
}

impl Regression {
    /// Slowdown ratio current/baseline.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// The outcome of one gate evaluation.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Benchmarks that exceeded the allowed slowdown.
    pub regressions: Vec<Regression>,
    /// Labels present in the current run and compared against the baseline.
    pub compared: usize,
    /// Labels skipped because the baseline mean sat below the noise floor.
    pub skipped_noise: usize,
    /// Current labels with no baseline entry (new benchmarks — allowed).
    pub missing_baseline: Vec<String>,
}

impl GateReport {
    /// True when no benchmark regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench gate: {} compared, {} below noise floor, {} new",
            self.compared,
            self.skipped_noise,
            self.missing_baseline.len()
        );
        for label in &self.missing_baseline {
            let _ = writeln!(out, "  new (no baseline): {label}");
        }
        for regression in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {}: {:.2}x ({:.3} ms -> {:.3} ms)",
                regression.label,
                regression.ratio(),
                regression.baseline_ns / 1e6,
                regression.current_ns / 1e6,
            );
        }
        if self.passed() {
            let _ = writeln!(out, "bench gate: OK");
        }
        out
    }
}

/// Parses the JSON-lines output a `cargo bench` run appends to
/// `CRITERION_SUMMARY_PATH`. Duplicate labels keep the *last* entry (a rerun
/// in the same file supersedes earlier lines).
pub fn parse_summary_lines(text: &str) -> BenchResults {
    let mut results = BenchResults::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(label) = extract_string_field(line, "label") else {
            continue;
        };
        let Some(mean) = extract_number_field(line, "mean_ns") else {
            continue;
        };
        results.insert(label, mean);
    }
    results
}

/// Parses a baseline file: the flat JSON object written by
/// [`render_baseline`] (`{"label": mean_ns, ...}`).
pub fn parse_baseline(text: &str) -> BenchResults {
    let mut results = BenchResults::new();
    let body = text.trim().trim_start_matches('{').trim_end_matches('}');
    for entry in body.split(',') {
        let Some((key, value)) = entry.split_once(':') else {
            continue;
        };
        let label = key.trim().trim_matches('"');
        if label.is_empty() {
            continue;
        }
        if let Ok(mean) = value.trim().parse::<f64>() {
            results.insert(label.to_string(), mean);
        }
    }
    results
}

/// Renders results as the committed baseline format: a flat, sorted,
/// human-diffable JSON object.
pub fn render_baseline(results: &BenchResults) -> String {
    let mut out = String::from("{\n");
    let entries: Vec<String> = results
        .iter()
        .map(|(label, mean)| format!("  \"{label}\": {mean:.0}"))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Compares a current run against the baseline under the given tolerances.
/// Labels only present in the baseline are ignored (a bench was removed);
/// labels only present in the current run are reported but never fail.
pub fn evaluate(
    baseline: &BenchResults,
    current: &BenchResults,
    config: &GateConfig,
) -> GateReport {
    let mut report = GateReport::default();
    for (label, &current_ns) in current {
        let Some(&baseline_ns) = baseline.get(label) else {
            report.missing_baseline.push(label.clone());
            continue;
        };
        if baseline_ns < config.min_baseline_ns {
            report.skipped_noise += 1;
            continue;
        }
        report.compared += 1;
        if current_ns > config.factor_for(label) * baseline_ns {
            report.regressions.push(Regression {
                label: label.clone(),
                baseline_ns,
                current_ns,
            });
        }
    }
    report
}

fn extract_string_field(line: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_number_field(line: &str, field: &str) -> Option<f64> {
    let marker = format!("\"{field}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = r#"
{"label": "fft_2d/serial/128", "mean_ns": 1200000, "min_ns": 1100000, "max_ns": 1300000, "samples": 20}
{"label": "fft_2d/rayon_parallel/128", "mean_ns": 700000, "min_ns": 650000, "max_ns": 800000, "samples": 20}
{"label": "tiny/bench", "mean_ns": 900, "min_ns": 800, "max_ns": 1000, "samples": 10}
"#;

    #[test]
    fn parses_summary_lines() {
        let results = parse_summary_lines(LINES);
        assert_eq!(results.len(), 3);
        assert_eq!(results["fft_2d/serial/128"], 1_200_000.0);
        assert_eq!(results["tiny/bench"], 900.0);
    }

    #[test]
    fn duplicate_labels_keep_the_last_run() {
        let text = concat!(
            "{\"label\": \"a\", \"mean_ns\": 10, \"min_ns\": 1, \"max_ns\": 20, \"samples\": 3}\n",
            "{\"label\": \"a\", \"mean_ns\": 30, \"min_ns\": 1, \"max_ns\": 40, \"samples\": 3}\n",
        );
        assert_eq!(parse_summary_lines(text)["a"], 30.0);
    }

    #[test]
    fn baseline_roundtrips() {
        let results = parse_summary_lines(LINES);
        let rendered = render_baseline(&results);
        let reparsed = parse_baseline(&rendered);
        assert_eq!(results.len(), reparsed.len());
        for (label, mean) in &results {
            assert!((reparsed[label] - mean).abs() < 1.0, "{label}");
        }
    }

    #[test]
    fn gate_passes_identical_runs_and_ignores_noise() {
        let results = parse_summary_lines(LINES);
        let report = evaluate(&results, &results, &GateConfig::default());
        assert!(report.passed());
        // The 900 ns benchmark sits below the 50 us noise floor.
        assert_eq!(report.skipped_noise, 1);
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn gate_flags_large_regressions_only() {
        let baseline = parse_summary_lines(LINES);
        let mut current = baseline.clone();
        // 2x slower: inside the generous 4x budget.
        current.insert("fft_2d/serial/128".into(), 2_400_000.0);
        assert!(evaluate(&baseline, &current, &GateConfig::default()).passed());
        // 10x slower: a real hot-path regression.
        current.insert("fft_2d/serial/128".into(), 12_000_000.0);
        let report = evaluate(&baseline, &current, &GateConfig::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].label, "fft_2d/serial/128");
        assert!(report.regressions[0].ratio() > 9.0);
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn per_label_factor_overrides_the_global_budget() {
        let baseline = parse_summary_lines(LINES);
        let mut current = baseline.clone();
        // 6x slower: beyond the global 4x budget...
        current.insert("fft_2d/serial/128".into(), 7_200_000.0);
        let mut config = GateConfig::default();
        assert!(!evaluate(&baseline, &current, &config).passed());
        // ...but inside a per-key 8x budget.
        config.per_label.insert("fft_2d/serial/128".into(), 8.0);
        assert!(evaluate(&baseline, &current, &config).passed());
        // A per-key budget can also be *tighter* than the global one.
        config.per_label.insert("fft_2d/serial/128".into(), 1.5);
        current.insert("fft_2d/serial/128".into(), 2_400_000.0);
        let report = evaluate(&baseline, &current, &config);
        assert_eq!(report.regressions.len(), 1, "2x breaks a 1.5x budget");
        // Other labels keep the global factor.
        assert_eq!(config.factor_for("fft_2d/rayon_parallel/128"), 4.0);
    }

    #[test]
    fn factor_override_env_format_parses_leniently() {
        let overrides = parse_factor_overrides("a/b=8, c/d = 2.5 ,, bogus, =3, e/f=-1, g=x");
        assert_eq!(overrides.len(), 2);
        assert_eq!(overrides["a/b"], 8.0);
        assert_eq!(overrides["c/d"], 2.5);
    }

    #[test]
    fn default_per_label_factors_cover_the_pre_optimisation_keys() {
        let defaults = default_per_label_factors();
        for key in [
            "fft_workspace/roundtrip_by_value/64",
            "fft_workspace/roundtrip_by_value/128",
            "fft_workspace/roundtrip_by_value/256",
            "payload_clone/deep_vec_1mib",
            "telemetry_analysis/span_build",
            "telemetry_analysis/critical_path",
        ] {
            assert_eq!(defaults.get(key), Some(&4.0), "{key}");
        }
        // The optimised counterparts take whatever the global factor is.
        assert!(!defaults.contains_key("fft_workspace/roundtrip_in_place/256"));
        assert!(!defaults.contains_key("payload_clone/shared_tile_1mib"));
        // The filesystem-bound durability keys carry their wider budget.
        assert_eq!(defaults.get("durability/checkpoint_persist"), Some(&6.0));
        assert_eq!(defaults.get("durability/resume_cold"), Some(&6.0));
    }

    #[test]
    fn env_overrides_win_over_the_built_in_defaults() {
        // The merge `bench_gate` performs: defaults first, env on top.
        let mut per_label = default_per_label_factors();
        per_label.extend(parse_factor_overrides(
            "payload_clone/deep_vec_1mib=1.5,brand/new=7",
        ));
        assert_eq!(per_label["payload_clone/deep_vec_1mib"], 1.5);
        assert_eq!(per_label["fft_workspace/roundtrip_by_value/64"], 4.0);
        assert_eq!(per_label["brand/new"], 7.0);
    }

    #[test]
    fn new_benchmarks_never_fail_the_gate() {
        let baseline = parse_summary_lines(LINES);
        let mut current = baseline.clone();
        current.insert("brand/new/bench".into(), 5_000_000.0);
        let report = evaluate(&baseline, &current, &GateConfig::default());
        assert!(report.passed());
        assert_eq!(report.missing_baseline, vec!["brand/new/bench".to_string()]);
    }
}
