//! Regenerates Table III: Gradient Decomposition vs. Halo Voxel Exchange on
//! the large Lead Titanate dataset, plus the abstract's headline claims.

use ptycho_bench::experiments::{
    backend_validation_line, headline_claims, scaling_tables, PaperDataset,
};
use ptycho_bench::report::Table;

fn main() {
    let (gd, hve) = scaling_tables(PaperDataset::Large);
    println!(
        "{}",
        ptycho_bench::experiments::render_scaling_rows(
            "Table III(a): Gradient Decomposition, large Lead Titanate dataset",
            &gd
        )
        .render()
    );
    println!(
        "{}",
        ptycho_bench::experiments::render_scaling_rows(
            "Table III(b): Halo Voxel Exchange, large Lead Titanate dataset",
            &hve
        )
        .render()
    );

    let mut reference = Table::new("Paper values for comparison (Table III)").headers(&[
        "GPUs",
        "GD mem (GB)",
        "GD runtime (min)",
        "HVE mem (GB)",
        "HVE runtime (min)",
    ]);
    for (gpus, gd_mem, gd_rt, hve_mem, hve_rt) in [
        (6, "9.14", "5543.0", "9.47", "7213.3"),
        (54, "1.54", "183.0", "1.8", "271.7"),
        (198, "0.66", "37.5", "0.78", "59.2"),
        (462, "0.42", "14.2", "0.48", "189.5"),
        (924, "0.32", "7.0", "NA", "NA"),
        (4158, "0.18", "2.2", "NA", "NA"),
    ] {
        reference.row(vec![
            gpus.to_string(),
            gd_mem.into(),
            gd_rt.into(),
            hve_mem.into(),
            hve_rt.into(),
        ]);
    }
    println!("{}", reference.render());

    let claims = headline_claims(PaperDataset::Large);
    println!("== Headline claims (paper: 51x memory reduction, 2.7x more memory efficient,");
    println!("   9x more scalable, 86x faster than Halo Voxel Exchange) ==");
    println!(
        "model: {:.0}x memory reduction, {:.1}x more memory efficient, {:.0}x more scalable, {:.0}x faster",
        claims.gd_memory_reduction,
        claims.memory_advantage,
        claims.scalability_advantage,
        claims.speed_advantage
    );
    println!("{}", backend_validation_line());
}
