//! Regenerates Table II: Gradient Decomposition vs. Halo Voxel Exchange on the
//! small Lead Titanate dataset (memory per GPU, runtime for 100 iterations,
//! strong-scaling efficiency).

use ptycho_bench::experiments::{backend_validation_line, scaling_tables, PaperDataset};
use ptycho_bench::report::Table;

fn main() {
    let (gd, hve) = scaling_tables(PaperDataset::Small);
    println!(
        "{}",
        ptycho_bench::experiments::render_scaling_rows(
            "Table II(a): Gradient Decomposition, small Lead Titanate dataset",
            &gd
        )
        .render()
    );
    println!(
        "{}",
        ptycho_bench::experiments::render_scaling_rows(
            "Table II(b): Halo Voxel Exchange, small Lead Titanate dataset",
            &hve
        )
        .render()
    );

    let mut reference = Table::new("Paper values for comparison (Table II)").headers(&[
        "GPUs",
        "GD mem (GB)",
        "GD runtime (min)",
        "HVE mem (GB)",
        "HVE runtime (min)",
    ]);
    for (gpus, gd_mem, gd_rt, hve_mem, hve_rt) in [
        (6, "2.53", "360.0", "2.80", "463.3"),
        (24, "1.20", "73.0", "1.20", "95.3"),
        (54, "0.58", "20.6", "0.78", "43.7"),
        (126, "0.39", "11.5", "NA", "NA"),
        (198, "0.31", "5.5", "NA", "NA"),
        (462, "0.23", "3.0", "NA", "NA"),
    ] {
        reference.row(vec![
            gpus.to_string(),
            gd_mem.into(),
            gd_rt.into(),
            hve_mem.into(),
            hve_rt.into(),
        ]);
    }
    println!("{}", reference.render());
    println!("{}", backend_validation_line());
}
