//! Regenerates Fig. 7a: strong-scaling runtime curves for both datasets
//! against the ideal O(1/P) line.

use ptycho_bench::experiments::{backend_validation_line, fig7a, PaperDataset};
use ptycho_bench::report::{fmt, Table};

fn main() {
    for (name, dataset) in [
        ("small Lead Titanate", PaperDataset::Small),
        ("large Lead Titanate", PaperDataset::Large),
    ] {
        let series = fig7a(dataset);
        let mut table = Table::new(format!("Fig. 7a: strong scaling, {name} dataset")).headers(&[
            "GPUs",
            "Runtime (min)",
            "Ideal O(1/P) (min)",
            "Speedup vs 6 GPUs",
        ]);
        let base = series[0].1;
        for (gpus, runtime, ideal) in &series {
            table.row(vec![
                gpus.to_string(),
                fmt(*runtime, 2),
                fmt(*ideal, 2),
                format!("{:.0}x", base / runtime),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Paper reference: 2519x speedup from 6 to 4158 GPUs on the large dataset \
         (super-linear, 364% efficiency)."
    );
    println!("{}", backend_validation_line());
}
