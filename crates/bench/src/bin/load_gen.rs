//! Load generator for the multi-tenant job engine: burst-submits a mixed
//! workload, drives it to completion, and reports throughput and latency
//! percentiles.
//!
//! ```text
//! cargo run --release -p ptycho-bench --bin load_gen -- --jobs 50 --smoke
//! ```
//!
//! Flags (all optional):
//!
//! * `--jobs N`  — burst size (default 50)
//! * `--fleet M` — fleet node count (default 16)
//! * `--seed S`  — workload seed: varies priorities, grids and the fault
//!   sites deterministically (default 0)
//! * `--smoke`   — verify the run instead of just timing it: every job must
//!   complete, the rank-death jobs must heal by shared-pool substitution,
//!   the admission log must equal the priority-sorted submission order and
//!   the fleet must stay conserved. Any violation exits non-zero, which is
//!   what CI runs.
//! * `--telemetry <path.jsonl>` — attach a flight recorder to every job and
//!   write the combined event log (all jobs, one file) to `path`. Inspect
//!   with `trace_dump`.
//! * `--metrics` — print the engine's end-of-run metrics snapshot: the
//!   Prometheus-style registry plus a retransmit/heal/queue-depth summary.
//! * `--checkpoint-dir <dir>` — durably checkpoint every job into
//!   `<dir>/job-<i>`, and print the FNV-64 volume hash of the designated
//!   *probe* job (submission index `jobs / 2`, forced to 2 iterations) for
//!   kill/resume comparison across processes.
//! * `--kill-at-barrier N` — arm a whole-process kill on the probe job at
//!   the `N`-th durable checkpoint commit (requires `--checkpoint-dir`).
//!   The burst still drains; the run then exits non-zero, exactly like the
//!   `kill -9` it simulates. Resume the killed job with `--resume`.
//! * `--resume <dir>` — standalone mode: resume one killed job from its
//!   checkpoint directory (`<dir>` is the per-job `.../job-<i>` path),
//!   wait for it, and print its FNV-64 volume hash. CI asserts this hash
//!   equals the clean run's probe hash — the cross-process bit-identity
//!   contract. Combine with `--telemetry` to record the resumed run's
//!   trace (stamped with the job id parsed from the directory name) for
//!   `trace_dump --diff` against the uninterrupted twin.
//! * `--health` — poll [`JobEngine::health_snapshot`] while the burst
//!   drains and print live per-job phase shares, straggler flags, and
//!   queue pressure.
//! * `--telemetry-capacity N` — size every job's per-rank flight-recorder
//!   rings to `N` records (`JobSpec::with_telemetry_capacity`). Undersized
//!   rings lose records, which `trace_dump --validate` then reports as
//!   sequence gaps.
//!
//! The workload mirrors the scheduler-soak suite: tiny-dataset Gradient
//! Decomposition jobs over three grid shapes and five priority levels, with
//! every 25th job losing a rank to a seeded kill so the run exercises the
//! shared spare pool under load.

use ptycho_cluster::{CommError, CrashPhase, FaultPolicy};
use ptycho_core::durability::{fnv1a64, ByteWriter, CheckpointPayload};
use ptycho_core::{JobEngine, JobError, JobSpec, JobState, ReconstructionResult, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use ptycho_telemetry::{Telemetry, TelemetryConfig};
use std::fs::File;
use std::io::Write;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One output file shared by every job's durable telemetry sink. Each
/// flush hands the sink a whole batch of complete lines via one
/// `write_all`, so lines from concurrent jobs interleave but never split.
#[derive(Clone)]
struct SharedWriter(Arc<Mutex<File>>);

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut file = self.0.lock().expect("telemetry file poisoned");
        file.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("telemetry file poisoned").flush()
    }
}

struct Args {
    jobs: usize,
    fleet: usize,
    seed: u64,
    smoke: bool,
    telemetry: Option<String>,
    metrics: bool,
    checkpoint_dir: Option<String>,
    kill_at_barrier: Option<u64>,
    resume: Option<String>,
    health: bool,
    telemetry_capacity: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 50,
        fleet: 16,
        seed: 0,
        smoke: false,
        telemetry: None,
        metrics: false,
        checkpoint_dir: None,
        kill_at_barrier: None,
        resume: None,
        health: false,
        telemetry_capacity: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = take("--jobs")? as usize,
            "--fleet" => args.fleet = take("--fleet")? as usize,
            "--seed" => args.seed = take("--seed")?,
            "--smoke" => args.smoke = true,
            "--metrics" => args.metrics = true,
            "--health" => args.health = true,
            "--kill-at-barrier" => args.kill_at_barrier = Some(take("--kill-at-barrier")?),
            "--telemetry-capacity" => {
                args.telemetry_capacity = Some(take("--telemetry-capacity")? as usize);
            }
            "--telemetry" => {
                args.telemetry = Some(iter.next().ok_or("--telemetry needs a path")?);
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(iter.next().ok_or("--checkpoint-dir needs a path")?);
            }
            "--resume" => {
                args.resume = Some(iter.next().ok_or("--resume needs a path")?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if args.fleet < 4 {
        return Err("--fleet must be at least 4 (the largest grid needs 4 nodes)".into());
    }
    if args.kill_at_barrier.is_some() && args.checkpoint_dir.is_none() {
        return Err("--kill-at-barrier requires --checkpoint-dir".into());
    }
    Ok(args)
}

/// The FNV-64 hash of a reconstruction's exact volume bytes — the token two
/// processes compare to prove bit-identity across a kill/resume cycle.
fn volume_hash(result: &ReconstructionResult) -> u64 {
    let mut w = ByteWriter::new();
    result.volume.encode(&mut w);
    fnv1a64(&w.into_bytes())
}

/// The deterministic burst workload: job `i` of `n` under `seed`.
fn job_spec(dataset: &Dataset, i: usize, seed: u64) -> JobSpec {
    let mix = i as u64 + 3 * seed;
    let kill = i % 25 == 7;
    // Kill jobs run on the 2-slot grid: even a minimal 4-node fleet then
    // always has a spare (or a neighbour that will release one), so the
    // healed burst completes on any accepted --fleet size.
    let (grid, iterations) = if kill {
        ((2, 1), 2)
    } else {
        ([(2, 2), (2, 1), (1, 2)][(mix % 3) as usize], 1)
    };
    let config = SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let priority = ((mix * 2) % 5) as i32 - 2;
    let mut spec = JobSpec::new(dataset.clone(), config, grid).with_priority(priority);
    if kill {
        // A seeded rank death: job-local node 1 dies early in iteration 0
        // and must be healed from the shared fleet pool.
        spec = spec.with_fault_policy(
            FaultPolicy::reliable(seed.wrapping_mul(1000) + i as u64).kill_rank(1, 1),
        );
    }
    spec
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("load_gen: {message}");
            eprintln!(
                "usage: load_gen [--jobs N] [--fleet M] [--seed S] [--smoke] \
                 [--telemetry <path.jsonl>] [--telemetry-capacity N] [--metrics] \
                 [--health] [--checkpoint-dir <dir>] [--kill-at-barrier N] \
                 [--resume <dir>/job-<i>]"
            );
            return ExitCode::FAILURE;
        }
    };

    // Standalone resume mode: bring one killed job back from its checkpoint
    // directory and report its volume hash.
    if let Some(dir) = &args.resume {
        let engine = JobEngine::new(args.fleet);
        // Telemetry is not part of the on-disk manifest; re-attach it here,
        // stamping records with the job id parsed from the `.../job-<i>`
        // directory name so `trace_dump --diff` can match the resumed trace
        // against the clean run's same job.
        let telemetry = match &args.telemetry {
            None => None,
            Some(path) => {
                let job_id: u64 = dir
                    .rsplit(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|digits| digits.parse().ok())
                    .unwrap_or(0);
                match File::create(path) {
                    Ok(file) => Some(Arc::new(Telemetry::with_writer(
                        TelemetryConfig {
                            job_id,
                            ..TelemetryConfig::default()
                        },
                        Box::new(SharedWriter(Arc::new(Mutex::new(file)))),
                    ))),
                    Err(error) => {
                        eprintln!("load_gen: cannot create {path}: {error}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
        let handle = match engine.resume_with_telemetry(dir, telemetry) {
            Ok(handle) => handle,
            Err(error) => {
                eprintln!("load_gen: resume from {dir} refused: {error}");
                return ExitCode::FAILURE;
            }
        };
        let report = handle.wait();
        return match (report.state, report.result) {
            (JobState::Completed, Some(result)) => {
                println!("load_gen: resume OK");
                println!("  volume fnv=0x{:016x}", volume_hash(&result));
                ExitCode::SUCCESS
            }
            (state, _) => {
                eprintln!(
                    "load_gen: resumed job ended {state:?}: {}",
                    report
                        .error
                        .map_or_else(|| "no error".into(), |e| e.to_string())
                );
                ExitCode::FAILURE
            }
        };
    }

    let writer = match &args.telemetry {
        Some(path) => match File::create(path) {
            Ok(file) => Some(SharedWriter(Arc::new(Mutex::new(file)))),
            Err(error) => {
                eprintln!("load_gen: cannot create {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let engine = JobEngine::paused(args.fleet);

    // The probe job: the one whose volume hash the kill/resume smoke
    // compares across processes. Forced to 2 iterations and a fixed grid so
    // it crosses at least two consistency barriers and is cheap to resume.
    let probe = args.checkpoint_dir.as_ref().map(|_| args.jobs / 2);

    let mut handles = Vec::with_capacity(args.jobs);
    let mut submitted = Vec::with_capacity(args.jobs);
    let mut expected_kills = 0usize;
    for i in 0..args.jobs {
        let mut spec = job_spec(&dataset, i, args.seed);
        if probe == Some(i) {
            let config = SolverConfig {
                iterations: 2,
                halo_px: 20,
                ..SolverConfig::default()
            };
            let priority = spec.priority;
            spec = JobSpec::new(dataset.clone(), config, (2, 2)).with_priority(priority);
            if let Some(barrier) = args.kill_at_barrier {
                spec = spec.with_fault_policy(
                    FaultPolicy::reliable(args.seed)
                        .kill_process_at_barrier(barrier, CrashPhase::AfterRename),
                );
            }
        }
        if let Some(dir) = &args.checkpoint_dir {
            spec = spec.with_checkpoint_dir(format!("{dir}/job-{i}"));
        }
        if let Some(writer) = &writer {
            // One recorder per job, stamped with the submission index, all
            // draining into the shared JSONL file.
            let config = TelemetryConfig {
                job_id: i as u64,
                ..TelemetryConfig::default()
            };
            spec = spec.with_telemetry(Arc::new(Telemetry::with_writer(
                config,
                Box::new(writer.clone()),
            )));
            if let Some(capacity) = args.telemetry_capacity {
                spec = spec.with_telemetry_capacity(capacity);
            }
        }
        if spec.fault_policy.as_ref().is_some_and(|p| p.kill.is_some()) {
            expected_kills += 1;
        }
        let priority = spec.priority;
        match engine.submit(spec) {
            Ok(handle) => {
                submitted.push((handle.id(), priority));
                handles.push(handle);
            }
            Err(error) => {
                eprintln!("load_gen: job {i} rejected: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let start = Instant::now();
    engine.start_admitting();
    if args.health {
        // Poll the live health snapshot while the burst drains. The
        // snapshot reads the progress events the service already buffers,
        // so polling never touches a rank's hot path.
        let mut polls = 0usize;
        loop {
            let health = engine.health_snapshot(2.0);
            if health.active == 0 && health.queue_depth == 0 {
                break;
            }
            polls += 1;
            let mut line = format!(
                "  health: {} running, {} queued, {} free node(s), {} waiting for spares",
                health.active, health.queue_depth, health.free_nodes, health.waiting_for_spare
            );
            for job in health.jobs.iter().take(4) {
                line.push_str(&format!(
                    "  | job {} iter {} c/w/m {:.2}/{:.2}/{:.2}{}",
                    job.job,
                    job.latest_iteration,
                    job.compute_share,
                    job.wait_share,
                    job.comm_share,
                    if job.straggler_ranks.is_empty() {
                        String::new()
                    } else {
                        format!(" stragglers {:?}", job.straggler_ranks)
                    }
                ));
            }
            println!("{line}");
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        println!("  health: idle after {polls} poll(s)");
    }
    engine.wait_idle();
    let wall = start.elapsed().as_secs_f64();

    let reports: Vec<_> = handles.iter().map(|handle| handle.wait()).collect();
    let completed = reports
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    let substitutions: usize = reports
        .iter()
        .filter_map(|r| r.result.as_ref())
        .map(|result| result.recovery.substitutions)
        .sum();

    // Per-job latency: queue wait + run time, submission to completion.
    let mut latencies_ms: Vec<f64> = reports
        .iter()
        .map(|r| (r.queue_seconds + r.run_seconds) * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    println!(
        "load_gen: {} job(s) on a {}-node fleet (seed {})",
        args.jobs, args.fleet, args.seed
    );
    println!(
        "  completed:    {completed}/{} ({} healed by substitution)",
        args.jobs, substitutions
    );
    println!("  makespan:     {:.3} s", wall);
    println!("  throughput:   {:.1} jobs/s", completed as f64 / wall);
    println!(
        "  latency ms:   p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 90.0),
        percentile(&latencies_ms, 99.0),
        latencies_ms.last().copied().unwrap_or(0.0),
    );

    if let Some(path) = &args.telemetry {
        println!("  telemetry:    {path}");
    }

    if let Some(i) = probe {
        let report = &reports[i];
        if let Some(result) = &report.result {
            println!("  probe job {i}: volume fnv=0x{:016x}", volume_hash(result));
        }
        if let Some(barrier) = args.kill_at_barrier {
            // Kill mode: the probe must have died at its armed barrier with
            // the typed process-kill error; everything else must drain. The
            // run then exits non-zero, like the `kill -9` it simulates.
            let killed = matches!(
                &report.error,
                Some(JobError::Failed(failure))
                    if matches!(
                        failure.error,
                        CommError::ProcessKilled { seq, .. } if seq == barrier
                    )
            );
            if !killed {
                eprintln!(
                    "load_gen: FAILED — probe job {i} was armed to die at barrier \
                     {barrier} but ended {:?}: {}",
                    report.state,
                    report
                        .error
                        .as_ref()
                        .map_or_else(|| "no error".into(), |e| e.to_string())
                );
                return ExitCode::FAILURE;
            }
            if completed != args.jobs - 1 {
                eprintln!(
                    "load_gen: FAILED — the burst did not drain around the killed \
                     probe ({completed}/{} completed)",
                    args.jobs
                );
                return ExitCode::FAILURE;
            }
            let dir = args.checkpoint_dir.as_deref().unwrap_or(".");
            println!("load_gen: probe job {i} killed at barrier {barrier} as armed");
            println!("  resume with: load_gen --resume {dir}/job-{i}");
            return ExitCode::FAILURE;
        }
    }

    if args.metrics {
        let registry = engine.metrics_snapshot();
        let retransmits = registry.counter("comm_retransmits_total").unwrap_or(0);
        let heals = registry.counter("engine_substitutions_total").unwrap_or(0);
        let (depth_p50, depth_p99) = registry
            .histogram("queue_depth")
            .map_or((0, 0), |h| (h.quantile(0.5), h.quantile(0.99)));
        println!("  metrics:      {retransmits} retransmit(s), {heals} heal(s), queue depth p50 {depth_p50} p99 {depth_p99}");
        println!("--- metrics snapshot ---");
        print!("{}", registry.prometheus_text());
        println!("------------------------");
    }

    if !args.smoke {
        return ExitCode::SUCCESS;
    }

    // Smoke verification: the run must be correct, not just finished.
    let mut failures = Vec::new();
    if completed != args.jobs {
        for report in reports.iter().filter(|r| r.state != JobState::Completed) {
            failures.push(format!(
                "job {} ended {:?}: {}",
                report.id,
                report.state,
                report
                    .error
                    .as_ref()
                    .map_or_else(|| "no error".into(), |e| e.to_string())
            ));
        }
    }
    if substitutions != expected_kills {
        failures.push(format!(
            "expected {expected_kills} shared-pool substitution(s), saw {substitutions}"
        ));
    }
    let mut expected_order = submitted.clone();
    expected_order.sort_by_key(|&(id, priority)| (std::cmp::Reverse(priority), id));
    let expected_order: Vec<_> = expected_order.into_iter().map(|(id, _)| id).collect();
    if engine.admission_log() != expected_order {
        failures.push("admission log deviates from priority-sorted submission order".into());
    }
    if !engine.fleet_is_conserved() {
        failures.push("fleet conservation violated".into());
    }
    if engine.dead_nodes() != expected_kills {
        failures.push(format!(
            "expected {expected_kills} retired node(s), saw {}",
            engine.dead_nodes()
        ));
    }

    if failures.is_empty() {
        println!("load_gen: smoke OK");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("load_gen: FAILED — {failure}");
        }
        ExitCode::FAILURE
    }
}
