//! Regenerates Table I: dataset sizes for measurements and reconstructions.

use ptycho_bench::experiments::{backend_validation_line, table1};

fn main() {
    println!("{}", table1().render());
    println!(
        "Paper reference: measurements 1024x1024x4158 / 1024x1024x16632, \
         reconstructions 1536x1536x100 / 3072x3072x100 at 10x10x125 pm^3."
    );
    println!("{}", backend_validation_line());
}
