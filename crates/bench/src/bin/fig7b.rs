//! Regenerates Fig. 7b: runtime breakdown (compute / wait / communication)
//! with and without the Asynchronous Pipelining for Parallel Passes (APPP)
//! on the large Lead Titanate dataset.

use ptycho_bench::experiments::{fig7b, render_fig7b};

fn main() {
    let rows = fig7b();
    println!("{}", render_fig7b(&rows).render());
    for (gpus, with, without) in &rows {
        let ratio = if with.communication > 0.0 {
            without.communication / with.communication
        } else {
            f64::INFINITY
        };
        println!(
            "{gpus:>5} GPUs: communication overhead {ratio:.0}x smaller with APPP \
             (paper reports 16x at 462 GPUs)"
        );
    }
    println!(
        "\nPaper reference: waiting time falls from 263 minutes at 24 GPUs to about a second \
         at 462 GPUs; without APPP the runtime at 462 GPUs is dominated by communication."
    );
}
