//! CI entry point for the benchmark regression gate.
//!
//! Typical flow (also wired in `.github/workflows/ci.yml`):
//!
//! ```text
//! rm -f target/bench-results.jsonl
//! CRITERION_SUMMARY_PATH=$PWD/target/bench-results.jsonl cargo bench -p ptycho-bench
//! cargo run --release -p ptycho-bench --bin bench_gate
//! ```
//!
//! Compares `target/bench-results.jsonl` (override with
//! `PTYCHO_BENCH_CURRENT`) against the committed `BENCH_baseline.json`
//! (override with `PTYCHO_BENCH_BASELINE`), failing with a non-zero exit on
//! a regression beyond the allowed factor (`PTYCHO_BENCH_GATE_FACTOR`,
//! default 4.0). Individual keys can carry their own budget via
//! `PTYCHO_BENCH_GATE_FACTORS`, comma-separated `label=factor` pairs, e.g.
//! `PTYCHO_BENCH_GATE_FACTORS="jobs_throughput/burst_24_fleet_8=8,payload_clone/deep_vec_1mib=2"`
//! — see BENCH_baseline.json's documentation in ARCHITECTURE.md for which
//! keys hold pre-optimisation baselines. Those keys already carry built-in
//! 4× budgets ([`default_per_label_factors`]); the environment variable
//! overrides them per key. Run with `--write-baseline` to regenerate the
//! baseline file from the current results instead of comparing.

use ptycho_bench::gate::{
    default_per_label_factors, evaluate, parse_baseline, parse_factor_overrides,
    parse_summary_lines, render_baseline, GateConfig,
};
use std::process::ExitCode;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn main() -> ExitCode {
    let current_path = env_or("PTYCHO_BENCH_CURRENT", "target/bench-results.jsonl");
    let baseline_path = env_or("PTYCHO_BENCH_BASELINE", "BENCH_baseline.json");
    let write_baseline = std::env::args().any(|arg| arg == "--write-baseline");

    let current_text = match std::fs::read_to_string(&current_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "bench gate: cannot read current results at {current_path}: {error}\n\
                 run `CRITERION_SUMMARY_PATH=$PWD/{current_path} cargo bench -p ptycho-bench` first"
            );
            return ExitCode::FAILURE;
        }
    };
    let current = parse_summary_lines(&current_text);
    if current.is_empty() {
        eprintln!("bench gate: {current_path} contains no benchmark results");
        return ExitCode::FAILURE;
    }

    if write_baseline {
        let rendered = render_baseline(&current);
        if let Err(error) = std::fs::write(&baseline_path, rendered) {
            eprintln!("bench gate: cannot write {baseline_path}: {error}");
            return ExitCode::FAILURE;
        }
        println!(
            "bench gate: wrote {} entries to {baseline_path}",
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "bench gate: cannot read baseline at {baseline_path}: {error}\n\
                 regenerate it with `cargo run -p ptycho-bench --bin bench_gate -- --write-baseline`"
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_baseline(&baseline_text);

    let factor = env_or("PTYCHO_BENCH_GATE_FACTOR", "")
        .parse::<f64>()
        .unwrap_or(GateConfig::default().factor);
    // Built-in budgets for the keys that deliberately hold pre-optimisation
    // baselines, with operator overrides from the environment layered on top
    // (an env entry for the same key wins).
    let mut per_label = default_per_label_factors();
    per_label.extend(parse_factor_overrides(&env_or(
        "PTYCHO_BENCH_GATE_FACTORS",
        "",
    )));
    let config = GateConfig {
        factor,
        per_label,
        ..GateConfig::default()
    };

    let report = evaluate(&baseline, &current, &config);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench gate: FAILED — at least one hot path regressed beyond {factor}x \
             (set PTYCHO_BENCH_GATE_FACTOR to adjust)"
        );
        ExitCode::FAILURE
    }
}
