//! Regenerates Fig. 8: seam artifacts at tile borders for the Halo Voxel
//! Exchange baseline vs. their absence under Gradient Decomposition.
//!
//! This experiment runs the real threaded solvers on a synthetic high-overlap
//! dataset and reports the seam-artifact metric (ratio of image-gradient
//! energy on tile borders to the interior; 1.0 means no visible seams).

use ptycho_bench::experiments::fig8;
use ptycho_bench::report::{fmt, Table};

fn main() {
    let iterations = 10;
    let result = fig8(iterations);
    let mut table = Table::new("Fig. 8: seam artifacts at tile borders").headers(&[
        "Method",
        "Seam metric (1.0 = no seams)",
        "Phase RMSE vs ground truth",
    ]);
    table.row(vec![
        "Halo Voxel Exchange".into(),
        fmt(result.hve_seam, 3),
        fmt(result.hve_rmse, 4),
    ]);
    table.row(vec![
        "Gradient Decomposition".into(),
        fmt(result.gd_seam, 3),
        fmt(result.gd_rmse, 4),
    ]);
    println!("{}", table.render());
    println!(
        "Paper reference: the Halo Voxel Exchange reconstruction shows artificial seam \
         borders at tile boundaries (Fig. 8a); Gradient Decomposition eliminates them (Fig. 8b)."
    );
}
