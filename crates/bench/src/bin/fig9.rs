//! Regenerates Fig. 9: convergence of the cost function `F(V)` for three
//! communication frequencies of the parallel passes (every probe location,
//! twice per iteration, once per iteration).

use ptycho_bench::experiments::fig9;
use ptycho_bench::report::{fmt, Table};

fn main() {
    let iterations = 8;
    let curves = fig9(iterations);
    let mut table = Table::new("Fig. 9: cost F(V) per iteration vs. communication frequency")
        .headers(&[
            "Iteration",
            curves[0].label.as_str(),
            curves[1].label.as_str(),
            curves[2].label.as_str(),
        ]);
    for i in 0..iterations {
        table.row(vec![
            (i + 1).to_string(),
            fmt(curves[0].costs[i], 4),
            fmt(curves[1].costs[i], 4),
            fmt(curves[2].costs[i], 4),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper reference: reducing the pass frequency to once or twice per iteration lowers \
         communication overhead without slowing convergence (it even converges slightly faster \
         than passing after every probe location, which can overshoot in the overlap regions)."
    );
}
