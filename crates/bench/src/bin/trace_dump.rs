//! Reassembles a JSONL telemetry log into per-rank timelines, the
//! paper-style compute/wait/communication breakdown (Fig. 7b), and the
//! causal analyses built on top of it.
//!
//! ```text
//! cargo run --release -p ptycho-bench --bin trace_dump -- trace.jsonl
//! ```
//!
//! Flags:
//!
//! * `--validate` — schema-validate every line instead of summarising:
//!   unknown kinds, missing fields, out-of-order sequence numbers, or a
//!   non-monotonic simulated clock exit non-zero. A truncated *final* line
//!   (a run killed mid-flush) is tolerated, matching the durable sink's
//!   prefix-consistency guarantee. Per-stream sequence gaps — records a
//!   flight-recorder ring evicted before they became durable — are warned
//!   about loudly; `--strict` turns the warning into a non-zero exit. This
//!   is what CI runs on the load generator's trace.
//! * `--critical-path` — per job: exact critical-path attribution (compute
//!   / comm / barrier-wait / retransmit / heal per rank, summing exactly to
//!   the job's end-to-end simulated time), the straggler report, and the
//!   anomaly scan. `--strict` exits non-zero on *integrity* violations
//!   only — lost ring records or an attribution row that fails the exact
//!   sum — never on anomalies (a fault-drill trace legitimately has
//!   retransmit bursts and kills).
//! * `--diff OTHER` — compare this trace's spans against `OTHER`'s,
//!   structurally (clocks excluded): exit 0 and print `identical` when the
//!   span sets match, exit 2 and print `DIVERGED …` localising the first
//!   divergence otherwise. A resumed run diffed against its uninterrupted
//!   twin diverges only at the resume seam, with the whole post-resume
//!   suffix reported as identical.
//! * `--job J`   — restrict to one job id.
//! * `--job-b K` — the job id in the `--diff` counterpart (defaults to
//!   `--job`'s value).
//! * `--straggler-z Z` — z-score threshold for the straggler report
//!   (default 2.0).

use ptycho_telemetry::{analysis, SchemaValidator, TraceSummary};
use std::process::ExitCode;

struct Args {
    path: String,
    validate: bool,
    critical_path: bool,
    strict: bool,
    diff: Option<String>,
    job: Option<u64>,
    job_b: Option<u64>,
    straggler_z: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut validate = false;
    let mut critical_path = false;
    let mut strict = false;
    let mut diff = None;
    let mut job = None;
    let mut job_b = None;
    let mut straggler_z = 2.0;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--validate" => validate = true,
            "--critical-path" => critical_path = true,
            "--strict" => strict = true,
            "--diff" => {
                diff = Some(iter.next().ok_or("--diff needs a trace file")?);
            }
            "--job" => {
                let value = iter.next().ok_or("--job needs a value")?;
                job = Some(value.parse::<u64>().map_err(|e| format!("--job: {e}"))?);
            }
            "--job-b" => {
                let value = iter.next().ok_or("--job-b needs a value")?;
                job_b = Some(value.parse::<u64>().map_err(|e| format!("--job-b: {e}"))?);
            }
            "--straggler-z" => {
                let value = iter.next().ok_or("--straggler-z needs a value")?;
                straggler_z = value
                    .parse::<f64>()
                    .map_err(|e| format!("--straggler-z: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("exactly one trace file expected".into());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("a trace file is required")?,
        validate,
        critical_path,
        strict,
        diff,
        job,
        job_b,
        straggler_z,
    })
}

/// Validation mode: every line must parse and every per-stream invariant
/// must hold. Only the final line may be truncated (a kill mid-write).
/// Returns `(accepted, validator)` so callers can inspect gap counters.
fn validate(text: &str) -> Result<(u64, SchemaValidator), String> {
    let mut validator = SchemaValidator::new();
    let mut pending: Option<String> = None;
    for (number, line) in text.lines().enumerate() {
        if let Some(error) = pending.take() {
            return Err(error);
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Err(error) = validator.check_line(line) {
            // Tolerated only if this turns out to be the last line.
            pending = Some(format!("line {}: {error}", number + 1));
        }
    }
    // A bad *final* line is a truncated flush, not a schema violation.
    Ok((validator.accepted(), validator))
}

fn format_ns(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn read_trace(path: &str) -> Result<TraceSummary, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    TraceSummary::from_lines(text.lines()).map_err(|error| format!("malformed {path}: {error}"))
}

/// The `--critical-path` report. Returns false when `--strict` must fail:
/// lost ring records or an attribution row whose segments do not sum
/// exactly to the job's end-to-end time.
fn report_critical_path(summary: &TraceSummary, jobs: &[u64], straggler_z: f64) -> bool {
    let mut intact = true;
    for &job in jobs {
        let path = analysis::critical_path(&summary.records, job);
        println!(
            "job {job}: end-to-end {} on critical rank {}",
            format_ns(path.end_to_end_ns),
            path.critical_rank
        );
        println!("  attribution (compute / comm / wait / retransmit / heal):");
        for row in &path.ranks {
            println!(
                "    rank {}: {} / {} / {} / {} / {}",
                row.rank,
                format_ns(row.compute_ns),
                format_ns(row.comm_ns),
                format_ns(row.barrier_wait_ns),
                format_ns(row.retransmit_ns),
                format_ns(row.heal_ns),
            );
            if row.total_ns() != path.end_to_end_ns {
                intact = false;
                println!(
                    "    INTEGRITY: rank {} segments sum to {} ns, not the end-to-end {} ns",
                    row.rank,
                    row.total_ns(),
                    path.end_to_end_ns
                );
            }
        }
        let report = analysis::straggler_report(&path, straggler_z);
        if report.stragglers.is_empty() {
            println!(
                "  stragglers (z > {straggler_z}): none (mean wait share {:.4})",
                report.mean_wait_share
            );
        } else {
            for straggler in &report.stragglers {
                println!(
                    "  straggler rank {}: wait share {:.4} (z = {:.2} > {straggler_z})",
                    straggler.rank, straggler.wait_share, straggler.z_score
                );
            }
        }
        let scan =
            analysis::anomaly_scan(&summary.records, job, &analysis::AnomalyConfig::default());
        for (rank, count) in &scan.retransmit_bursts {
            println!("  anomaly: rank {rank} retransmit burst ({count} retransmits)");
        }
        for (node, count) in &scan.suspicion_clusters {
            println!("  anomaly: node {node} suspicion cluster ({count} suspicions)");
        }
        for (rank, missing) in &scan.lost_ring_records {
            intact = false;
            println!("  INTEGRITY: rank {rank} lost {missing} record(s) to ring overflow");
        }
    }
    intact
}

/// The `--diff` report. Returns the process exit code: 0 identical, 2
/// diverged.
fn report_diff(a: &TraceSummary, b: &TraceSummary, args: &Args) -> ExitCode {
    // Without --job, diff every job of A against the same id in B.
    let jobs_a = match args.job {
        Some(job) => vec![job],
        None => a.jobs(),
    };
    let mut diverged = false;
    for &job in &jobs_a {
        let job_b = args.job_b.unwrap_or(job);
        let diff = analysis::diff_jobs(&a.records, job, &b.records, job_b);
        if diff.identical {
            println!(
                "job {job} vs {job_b}: identical ({} iteration span(s))",
                diff.iterations_a
            );
        } else {
            diverged = true;
            println!(
                "job {job} vs {job_b}: DIVERGED at {}; common prefix {}, trailing {} \
                 iteration span(s) identical; message spans only in A: {}, only in B: {}",
                diff.first_divergence
                    .as_deref()
                    .unwrap_or("message spans only"),
                diff.common_prefix,
                diff.common_suffix,
                diff.messages_only_in_a,
                diff.messages_only_in_b,
            );
        }
    }
    if diverged {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("trace_dump: {message}");
            eprintln!(
                "usage: trace_dump <trace.jsonl> [--validate] [--critical-path] [--strict] \
                 [--diff OTHER] [--job J] [--job-b K] [--straggler-z Z]"
            );
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("trace_dump: cannot read {}: {error}", args.path);
            return ExitCode::FAILURE;
        }
    };

    if args.validate {
        return match validate(&text) {
            Ok((accepted, validator)) => {
                println!("trace_dump: {} valid record(s) in {}", accepted, args.path);
                let lost = validator.lost_records();
                if lost > 0 {
                    for ((job, rank), missing) in validator.lost_records_by_stream() {
                        eprintln!(
                            "trace_dump: WARNING — job {job} rank {rank} lost {missing} \
                             record(s) to flight-recorder ring overflow"
                        );
                    }
                    if args.strict {
                        eprintln!("trace_dump: {lost} lost record(s) and --strict: failing");
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("trace_dump: INVALID — {message}");
                ExitCode::FAILURE
            }
        };
    }

    let summary = match TraceSummary::from_lines(text.lines()) {
        Ok(summary) => summary,
        Err(error) => {
            eprintln!("trace_dump: malformed trace: {error}");
            return ExitCode::FAILURE;
        }
    };
    if summary.truncated_lines > 0 {
        println!(
            "trace_dump: note — final line truncated (run killed mid-flush); \
             the consistent prefix follows"
        );
    }

    if let Some(other) = &args.diff {
        let other = match read_trace(other) {
            Ok(other) => other,
            Err(message) => {
                eprintln!("trace_dump: {message}");
                return ExitCode::FAILURE;
            }
        };
        return report_diff(&summary, &other, &args);
    }

    let jobs = match args.job {
        Some(job) => vec![job],
        None => summary.jobs(),
    };

    if args.critical_path {
        let intact = report_critical_path(&summary, &jobs, args.straggler_z);
        return if intact || !args.strict {
            ExitCode::SUCCESS
        } else {
            eprintln!("trace_dump: integrity violation(s) and --strict: failing");
            ExitCode::FAILURE
        };
    }

    println!(
        "trace_dump: {} event(s), {} stream(s), {} job(s)",
        summary.total_events(),
        summary.streams.len(),
        jobs.len()
    );
    for job in jobs {
        println!("job {job}:");
        for ((_, rank), stream) in summary.streams.iter().filter(|((j, _), _)| *j == job) {
            println!(
                "  rank {rank}: {} event(s), {} iteration(s), last cost {:.6e}, sim clock {}",
                stream.events,
                stream.iterations,
                stream.last_cost,
                format_ns(stream.last_sim_ns),
            );
            let mut kinds: Vec<_> = stream.kinds.iter().collect();
            kinds.sort_by(|a, b| {
                (std::cmp::Reverse(*a.1), a.0).cmp(&(std::cmp::Reverse(*b.1), b.0))
            });
            let top: Vec<String> = kinds
                .iter()
                .take(4)
                .map(|(kind, count)| format!("{kind}={count}"))
                .collect();
            println!("    top events: {}", top.join("  "));
        }
        // The Fig. 7b-style stacked view: per-rank compute / communication,
        // plus the wait implied by the slowest rank's critical path.
        println!("  breakdown (compute / comm / wait):");
        for row in summary.breakdown(job) {
            println!(
                "    rank {}: {} / {} / {}",
                row.rank,
                format_ns(row.compute_ns),
                format_ns(row.comm_ns),
                format_ns(row.wait_ns),
            );
        }
    }
    ExitCode::SUCCESS
}
