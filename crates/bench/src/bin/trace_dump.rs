//! Reassembles a JSONL telemetry log into per-rank timelines and the
//! paper-style compute/wait/communication breakdown (Fig. 7b).
//!
//! ```text
//! cargo run --release -p ptycho-bench --bin trace_dump -- trace.jsonl
//! ```
//!
//! Flags:
//!
//! * `--validate` — schema-validate every line instead of summarising:
//!   unknown kinds, missing fields, out-of-order sequence numbers, or a
//!   non-monotonic simulated clock exit non-zero. A truncated *final* line
//!   (a run killed mid-flush) is tolerated, matching the durable sink's
//!   prefix-consistency guarantee. This is what CI runs on the load
//!   generator's trace.
//! * `--job J`   — restrict the summary to one job id.

use ptycho_telemetry::{SchemaValidator, TraceSummary};
use std::process::ExitCode;

struct Args {
    path: String,
    validate: bool,
    job: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut validate = false;
    let mut job = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--validate" => validate = true,
            "--job" => {
                let value = iter.next().ok_or("--job needs a value")?;
                job = Some(value.parse::<u64>().map_err(|e| format!("--job: {e}"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("exactly one trace file expected".into());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("a trace file is required")?,
        validate,
        job,
    })
}

/// Validation mode: every line must parse and every per-stream invariant
/// must hold. Only the final line may be truncated (a kill mid-write).
fn validate(text: &str) -> Result<u64, String> {
    let mut validator = SchemaValidator::new();
    let mut pending: Option<String> = None;
    for (number, line) in text.lines().enumerate() {
        if let Some(error) = pending.take() {
            return Err(error);
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Err(error) = validator.check_line(line) {
            // Tolerated only if this turns out to be the last line.
            pending = Some(format!("line {}: {error}", number + 1));
        }
    }
    // A bad *final* line is a truncated flush, not a schema violation.
    Ok(validator.accepted())
}

fn format_ns(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("trace_dump: {message}");
            eprintln!("usage: trace_dump <trace.jsonl> [--validate] [--job J]");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("trace_dump: cannot read {}: {error}", args.path);
            return ExitCode::FAILURE;
        }
    };

    if args.validate {
        return match validate(&text) {
            Ok(accepted) => {
                println!("trace_dump: {} valid record(s) in {}", accepted, args.path);
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("trace_dump: INVALID — {message}");
                ExitCode::FAILURE
            }
        };
    }

    let summary = match TraceSummary::from_lines(text.lines()) {
        Ok(summary) => summary,
        Err(error) => {
            eprintln!("trace_dump: malformed trace: {error}");
            return ExitCode::FAILURE;
        }
    };
    if summary.truncated_lines > 0 {
        println!(
            "trace_dump: note — final line truncated (run killed mid-flush); \
             the consistent prefix follows"
        );
    }

    let jobs = match args.job {
        Some(job) => vec![job],
        None => summary.jobs(),
    };
    println!(
        "trace_dump: {} event(s), {} stream(s), {} job(s)",
        summary.total_events(),
        summary.streams.len(),
        jobs.len()
    );
    for job in jobs {
        println!("job {job}:");
        for ((_, rank), stream) in summary.streams.iter().filter(|((j, _), _)| *j == job) {
            println!(
                "  rank {rank}: {} event(s), {} iteration(s), last cost {:.6e}, sim clock {}",
                stream.events,
                stream.iterations,
                stream.last_cost,
                format_ns(stream.last_sim_ns),
            );
            let mut kinds: Vec<_> = stream.kinds.iter().collect();
            kinds.sort_by(|a, b| {
                (std::cmp::Reverse(*a.1), a.0).cmp(&(std::cmp::Reverse(*b.1), b.0))
            });
            let top: Vec<String> = kinds
                .iter()
                .take(4)
                .map(|(kind, count)| format!("{kind}={count}"))
                .collect();
            println!("    top events: {}", top.join("  "));
        }
        // The Fig. 7b-style stacked view: per-rank compute / communication,
        // plus the wait implied by the slowest rank's critical path.
        println!("  breakdown (compute / comm / wait):");
        for row in summary.breakdown(job) {
            println!(
                "    rank {}: {} / {} / {}",
                row.rank,
                format_ns(row.compute_ns),
                format_ns(row.comm_ns),
                format_ns(row.wait_ns),
            );
        }
    }
    ExitCode::SUCCESS
}
