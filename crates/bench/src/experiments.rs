//! The experiment functions behind every table and figure of the paper.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Table I (dataset sizes) | [`table1`] | `table1` |
//! | Table II (small dataset scaling) | [`scaling_tables`] | `table2` |
//! | Table III (large dataset scaling) | [`scaling_tables`] | `table3` |
//! | Fig. 7a (strong scaling curves) | [`fig7a`] | `fig7a` |
//! | Fig. 7b (runtime breakdown, APPP ablation) | [`fig7b`] | `fig7b` |
//! | Fig. 8 (seam artifacts) | [`fig8`] | `fig8` |
//! | Fig. 9 (convergence vs. pass frequency) | [`fig9`] | `fig9` |
//!
//! The scaling experiments (Tables II/III, Fig. 7) replay the decomposition
//! geometry against the calibrated performance model; the image-quality
//! experiments (Figs. 8 and 9) run the real threaded solvers on a synthetic
//! dataset.

use crate::report::{fmt, fmt_or_na, Table};
use ptycho_array::stats;
use ptycho_cluster::{Cluster, ClusterTopology, CommBackend, LockstepBackend, TimeBreakdown};
use ptycho_core::config::PassFrequency;
use ptycho_core::scaling::{Method, ScalingPoint, ScalingScenario};
use ptycho_core::stitch::phase_image;
use ptycho_core::{
    seam_artifact_metric, GradientDecompositionSolver, HaloVoxelExchangeSolver, RecoveryPolicy,
    SolverConfig,
};
use ptycho_sim::dataset::{Dataset, DatasetSpec, SyntheticConfig};

/// Which communication backend the real-solver portions of the reproduction
/// binaries execute on — the image-quality experiments (Figs. 8 and 9) and
/// the validation runs the analytic bins (`fig7a`, `table1`–`table3`)
/// append. Selected by the `PTYCHO_BACKEND` environment variable:
/// `threaded` (default, one OS thread per rank) or `lockstep`
/// (deterministic cooperative scheduling — identical results on every run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// One OS thread per rank ([`Cluster`]).
    #[default]
    Threaded,
    /// Deterministic cooperative scheduling ([`LockstepBackend`]).
    Lockstep,
}

impl BackendChoice {
    /// Reads `PTYCHO_BACKEND` (`threaded` | `lockstep`, case-insensitive) —
    /// the one parsing helper shared by every reproduction binary.
    ///
    /// # Panics
    /// Panics on an unrecognised value, so typos fail loudly instead of
    /// silently benchmarking the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var("PTYCHO_BACKEND") {
            Err(_) => Self::default(),
            Ok(value) => match value.to_ascii_lowercase().as_str() {
                "" | "threaded" => BackendChoice::Threaded,
                "lockstep" => BackendChoice::Lockstep,
                other => panic!("PTYCHO_BACKEND must be 'threaded' or 'lockstep', got '{other}'"),
            },
        }
    }

    /// The name the choice was selected by.
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Threaded => "threaded",
            BackendChoice::Lockstep => "lockstep",
        }
    }
}

/// Runs `$body` with `$backend` bound to the concrete backend `$choice`
/// selects (the two backends are distinct types, so the dispatch cannot be a
/// plain function). The single expansion point keeps the experiment
/// functions free of per-function `match` duplication.
macro_rules! with_selected_backend {
    ($choice:expr, |$backend:ident| $body:expr) => {
        match $choice {
            BackendChoice::Threaded => {
                // Loss detection (a generous 30 s receive bound) so that a
                // stalled experiment errors out instead of hanging, and so
                // the engine's recovery policies are usable on this arm.
                let $backend = Cluster::new(ClusterTopology::summit()).with_loss_detection();
                $body
            }
            BackendChoice::Lockstep => {
                let $backend = LockstepBackend::new(ClusterTopology::summit());
                $body
            }
        }
    };
}

/// A one-line real-solver validation run on the backend selected by
/// `PTYCHO_BACKEND`, appended by the analytic reproduction binaries
/// (`fig7a`, `table1`–`table3`) so that *every* bin honours the selection
/// and exercises the fault-tolerant iteration engine for real — the
/// analytic tables themselves replay the performance model and never touch
/// a backend.
pub fn backend_validation_line() -> String {
    let choice = BackendChoice::from_env();
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let result = with_selected_backend!(choice, |backend| solver
        .run_with_recovery(
            &backend,
            RecoveryPolicy::RetransmitThenRestart {
                max_iteration_restarts: 1,
            },
        )
        .expect("fault-free validation run cannot fail"));
    format!(
        "validation [{} backend, engine with retransmit+restart]: \
         GD 2x2 cost {:.1} -> {:.1}, {} restart(s)",
        choice.label(),
        result.cost_history.initial_cost(),
        result.cost_history.final_cost(),
        result.recovery.iteration_restarts,
    )
}

/// The paper's measured single-node (6 GPU) runtimes in minutes, used to
/// calibrate the performance model (Tables II(a) and III(a)).
pub const PAPER_SMALL_6GPU_MINUTES: f64 = 360.0;
/// Calibration anchor for the large dataset.
pub const PAPER_LARGE_6GPU_MINUTES: f64 = 5543.0;

/// Which paper dataset a scaling experiment refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperDataset {
    /// Lead Titanate small (4158 probe locations, Table II).
    Small,
    /// Lead Titanate large (16632 probe locations, Table III).
    Large,
}

impl PaperDataset {
    /// The dataset geometry.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            PaperDataset::Small => DatasetSpec::lead_titanate_small(),
            PaperDataset::Large => DatasetSpec::lead_titanate_large(),
        }
    }

    /// The calibration anchor (6-GPU runtime in minutes from the paper).
    pub fn calibration_minutes(&self) -> f64 {
        match self {
            PaperDataset::Small => PAPER_SMALL_6GPU_MINUTES,
            PaperDataset::Large => PAPER_LARGE_6GPU_MINUTES,
        }
    }

    /// A calibrated scaling scenario for this dataset.
    pub fn scenario(&self) -> ScalingScenario {
        let mut scenario = ScalingScenario::new(self.spec());
        scenario.calibrate_to(6, self.calibration_minutes());
        scenario
    }
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Regenerates Table I: dataset sizes for measurements and reconstructions.
pub fn table1() -> Table {
    let mut table = Table::new("Table I: dataset sizes").headers(&[
        "Sample",
        "Probe locations",
        "Measurements y size",
        "Reconstruction V size",
        "Voxel size (pm^3)",
        "Overlap ratio",
    ]);
    for spec in [
        DatasetSpec::lead_titanate_small(),
        DatasetSpec::lead_titanate_large(),
    ] {
        table.row(vec![
            spec.name.clone(),
            spec.probe_locations.to_string(),
            format!(
                "{}x{}x{}",
                spec.detector_px, spec.detector_px, spec.probe_locations
            ),
            format!(
                "{}x{}x{}",
                spec.reconstruction.1, spec.reconstruction.2, spec.reconstruction.0
            ),
            format!(
                "{}x{}x{}",
                spec.voxel_size_pm.0, spec.voxel_size_pm.1, spec.voxel_size_pm.2
            ),
            format!("{:.0}%", spec.overlap_ratio() * 100.0),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Tables II and III
// ---------------------------------------------------------------------------

/// One method's scaling rows for a dataset (GPU counts from the paper).
#[derive(Clone, Debug)]
pub struct ScalingRows {
    /// The method the rows describe.
    pub method: Method,
    /// One entry per GPU count; `None` marks the paper's "NA" cells.
    pub points: Vec<Option<ScalingPoint>>,
    /// The GPU counts of the columns.
    pub gpu_counts: Vec<usize>,
}

/// Regenerates Table II (small dataset) or Table III (large dataset): the
/// Gradient Decomposition rows and the Halo Voxel Exchange rows.
pub fn scaling_tables(dataset: PaperDataset) -> (ScalingRows, ScalingRows) {
    let scenario = dataset.scenario();
    let gpu_counts = scenario.paper_gpu_counts();
    let gd = ScalingRows {
        method: Method::GradientDecomposition,
        points: scenario.table(Method::GradientDecomposition, &gpu_counts),
        gpu_counts: gpu_counts.clone(),
    };
    let hve = ScalingRows {
        method: Method::HaloVoxelExchange,
        points: scenario.table(Method::HaloVoxelExchange, &gpu_counts),
        gpu_counts,
    };
    (gd, hve)
}

/// Formats one method's scaling rows in the layout of Tables II/III.
pub fn render_scaling_rows(title: &str, rows: &ScalingRows) -> Table {
    let mut table = Table::new(title).headers(&[
        "GPUs",
        "Nodes",
        "Memory/GPU (GB)",
        "Runtime (min)",
        "Efficiency (%)",
    ]);
    for (gpus, point) in rows.gpu_counts.iter().zip(&rows.points) {
        table.row(vec![
            gpus.to_string(),
            point
                .map(|p| p.nodes.to_string())
                .unwrap_or_else(|| "NA".into()),
            fmt_or_na(point.map(|p| p.memory_gb), 2),
            fmt_or_na(point.map(|p| p.runtime_minutes), 1),
            fmt_or_na(point.map(|p| p.efficiency_percent), 0),
        ]);
    }
    table
}

/// Headline comparison derived from Table III: memory-reduction factor,
/// best-runtime ratio, and scalability ratio between the methods.
#[derive(Clone, Copy, Debug)]
pub struct HeadlineClaims {
    /// GD memory reduction from 6 GPUs to its largest configuration.
    pub gd_memory_reduction: f64,
    /// HVE floor memory / GD floor memory.
    pub memory_advantage: f64,
    /// HVE best runtime / GD best runtime.
    pub speed_advantage: f64,
    /// GD max feasible GPUs / HVE max feasible GPUs.
    pub scalability_advantage: f64,
}

/// Computes the headline claims of the abstract from the scaling model.
pub fn headline_claims(dataset: PaperDataset) -> HeadlineClaims {
    let (gd, hve) = scaling_tables(dataset);
    let gd_points: Vec<&ScalingPoint> = gd.points.iter().flatten().collect();
    let hve_points: Vec<&ScalingPoint> = hve.points.iter().flatten().collect();
    let gd_first = gd_points.first().expect("GD always feasible");
    let gd_last = gd_points.last().expect("GD always feasible");
    let gd_best_runtime = gd_points
        .iter()
        .map(|p| p.runtime_minutes)
        .fold(f64::INFINITY, f64::min);
    let hve_best_runtime = hve_points
        .iter()
        .map(|p| p.runtime_minutes)
        .fold(f64::INFINITY, f64::min);
    let hve_floor_memory = hve_points
        .iter()
        .map(|p| p.memory_gb)
        .fold(f64::INFINITY, f64::min);
    let hve_max_gpus = hve_points.iter().map(|p| p.gpus).max().unwrap_or(1);
    HeadlineClaims {
        gd_memory_reduction: gd_first.memory_gb / gd_last.memory_gb,
        memory_advantage: hve_floor_memory / gd_last.memory_gb,
        speed_advantage: hve_best_runtime / gd_best_runtime,
        scalability_advantage: gd_last.gpus as f64 / hve_max_gpus as f64,
    }
}

// ---------------------------------------------------------------------------
// Fig. 7a and 7b
// ---------------------------------------------------------------------------

/// Strong-scaling series for Fig. 7a: `(gpus, runtime_minutes, ideal_minutes)`.
pub fn fig7a(dataset: PaperDataset) -> Vec<(usize, f64, f64)> {
    let scenario = dataset.scenario();
    let gpu_counts = scenario.paper_gpu_counts();
    let rows = scenario.table(Method::GradientDecomposition, &gpu_counts);
    let base = rows
        .iter()
        .flatten()
        .next()
        .map(|p| (p.gpus, p.runtime_minutes))
        .expect("at least one feasible point");
    rows.iter()
        .flatten()
        .map(|p| {
            let ideal = base.1 * base.0 as f64 / p.gpus as f64;
            (p.gpus, p.runtime_minutes, ideal)
        })
        .collect()
}

/// Runtime breakdown for Fig. 7b: `(gpus, with_appp, without_appp)` for the
/// large dataset, 24–462 GPUs.
pub fn fig7b() -> Vec<(usize, TimeBreakdown, TimeBreakdown)> {
    let scenario = PaperDataset::Large.scenario();
    [24usize, 54, 126, 198, 462]
        .iter()
        .map(|&gpus| {
            let with = scenario
                .point(Method::GradientDecomposition, gpus, true)
                .expect("GD feasible");
            let without = scenario
                .point(Method::GradientDecomposition, gpus, false)
                .expect("GD feasible");
            (gpus, with.breakdown, without.breakdown)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 8: seam artifacts (real execution)
// ---------------------------------------------------------------------------

/// The result of the seam-artifact experiment.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Result {
    /// Seam metric (border-gradient / interior-gradient ratio) for GD.
    pub gd_seam: f64,
    /// Seam metric for the Halo Voxel Exchange baseline.
    pub hve_seam: f64,
    /// Reconstruction error (RMSE of the phase image vs. ground truth) for GD.
    pub gd_rmse: f64,
    /// Reconstruction error for HVE.
    pub hve_rmse: f64,
}

/// The synthetic acquisition used by the image-quality experiments: a dense
/// scan (high probe overlap, so probe circles overlap beyond their direct
/// neighbours) with Poisson noise — the regime of Sec. IV in which the voxel
/// copy-paste of the baseline produces visible seams.
pub fn quality_dataset(seed: u64) -> Dataset {
    Dataset::synthesize(SyntheticConfig {
        object_px: 160,
        slices: 2,
        scan_grid: (12, 12),
        window_px: 64,
        dose: Some(100.0),
        defocus_pm: 45_000.0,
        seed,
    })
}

/// Runs both methods on the backend selected by `PTYCHO_BACKEND` (see
/// [`BackendChoice`]) and measures seam artifacts at the tile borders
/// (Fig. 8) plus reconstruction error.
pub fn fig8(iterations: usize) -> Fig8Result {
    with_selected_backend!(BackendChoice::from_env(), |backend| fig8_on(
        iterations, &backend
    ))
}

/// Runs both methods on the same dataset and tile grid and measures seam
/// artifacts at the tile borders (Fig. 8) plus reconstruction error, on an
/// explicit communication backend.
pub fn fig8_on<B: CommBackend>(iterations: usize, cluster: &B) -> Fig8Result {
    let dataset = quality_dataset(17);
    let grid_dims = (3, 3);

    // The Gradient Decomposition halo covers the probe window (the paper uses
    // a halo sized to the probe-location circle), so every tile receives the
    // complete accumulated gradient for its voxels.
    let gd_config = SolverConfig {
        iterations,
        halo_px: 32,
        step_relaxation: 0.1,
        ..SolverConfig::default()
    };
    let gd = GradientDecompositionSolver::new(&dataset, gd_config, grid_dims).run(cluster);

    // The baseline uses the paper's two extra probe-location rows; in the
    // high-overlap regime that is not enough for tiles to agree at their
    // borders, which is exactly what produces the seams of Fig. 8(a).
    let hve_config = SolverConfig {
        iterations,
        hve_extra_probe_rows: 2,
        hve_exchange_period: 5,
        step_relaxation: 0.1,
        ..SolverConfig::default()
    };
    let hve = HaloVoxelExchangeSolver::new(&dataset, hve_config, grid_dims)
        .expect("3x3 grid is feasible for the baseline on this dataset")
        .run(cluster);

    let truth_phase = dataset.specimen().phase_slice(0);
    let gd_phase = phase_image(&gd.volume, 0);
    let hve_phase = phase_image(&hve.volume, 0);

    // Seams are discontinuities the specimen does not have, so measure the
    // border-gradient excess on the *error* image (reconstruction − truth):
    // a seamless reconstruction has a smooth error field across tile borders.
    let gd_error = gd_phase.zip_map(&truth_phase, |a, b| a - b);
    let hve_error = hve_phase.zip_map(&truth_phase, |a, b| a - b);

    Fig8Result {
        gd_seam: seam_artifact_metric(&gd_error, &gd.grid, 1),
        hve_seam: seam_artifact_metric(&hve_error, &hve.grid, 1),
        gd_rmse: stats::rmse(&gd_phase, &truth_phase),
        hve_rmse: stats::rmse(&hve_phase, &truth_phase),
    }
}

// ---------------------------------------------------------------------------
// Fig. 9: convergence vs. communication frequency (real execution)
// ---------------------------------------------------------------------------

/// One convergence curve: a label and the per-iteration cost values.
#[derive(Clone, Debug)]
pub struct ConvergenceCurve {
    /// Human-readable label matching the paper's legend.
    pub label: String,
    /// Cost `F(V)` per iteration.
    pub costs: Vec<f64>,
}

/// Runs the Fig. 9 protocol on the backend selected by `PTYCHO_BACKEND`
/// (see [`BackendChoice`]).
pub fn fig9(iterations: usize) -> Vec<ConvergenceCurve> {
    with_selected_backend!(BackendChoice::from_env(), |backend| fig9_on(
        iterations, &backend
    ))
}

/// Runs the Gradient Decomposition solver with the three communication
/// frequencies of Fig. 9 (once per probe location, twice per iteration, once
/// per iteration) and returns the three convergence curves, on an explicit
/// communication backend.
pub fn fig9_on<B: CommBackend>(iterations: usize, cluster: &B) -> Vec<ConvergenceCurve> {
    let dataset = quality_dataset(23);
    let variants = [
        ("T = every probe location", PassFrequency::EveryProbe),
        ("T = twice per iteration", PassFrequency::PerIteration(2)),
        ("T = once per iteration", PassFrequency::PerIteration(1)),
    ];
    variants
        .iter()
        .map(|(label, frequency)| {
            let config = SolverConfig {
                iterations,
                halo_px: 32,
                step_relaxation: 0.1,
                pass_frequency: *frequency,
                ..SolverConfig::default()
            };
            let result = GradientDecompositionSolver::new(&dataset, config, (2, 3)).run(cluster);
            ConvergenceCurve {
                label: label.to_string(),
                costs: result.cost_history.costs().to_vec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rendering helpers shared by the binaries
// ---------------------------------------------------------------------------

/// Renders the Fig. 7b breakdown as a table.
pub fn render_fig7b(rows: &[(usize, TimeBreakdown, TimeBreakdown)]) -> Table {
    let mut table =
        Table::new("Fig. 7b: runtime breakdown per 100 iterations, large dataset (minutes)")
            .headers(&[
                "GPUs",
                "compute",
                "wait",
                "comm (APPP)",
                "comm (w/o APPP)",
                "total (APPP)",
                "total (w/o APPP)",
            ]);
    for (gpus, with, without) in rows {
        table.row(vec![
            gpus.to_string(),
            fmt(with.compute / 60.0, 2),
            fmt(with.wait / 60.0, 2),
            fmt(with.communication / 60.0, 3),
            fmt(without.communication / 60.0, 3),
            fmt(with.total() / 60.0, 2),
            fmt(without.total() / 60.0, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_both_datasets() {
        let t = table1();
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("4158"));
        assert!(text.contains("16632"));
        assert!(text.contains("1024x1024"));
        // The paper's 86-87% probe overlap range, as rendered in Table I.
        assert!(text.contains("87%"), "small dataset overlap: {text}");
        assert!(text.contains("86%"), "large dataset overlap: {text}");
    }

    #[test]
    fn scaling_tables_have_na_cells_for_hve() {
        let (gd, hve) = scaling_tables(PaperDataset::Small);
        assert!(gd.points.iter().all(Option::is_some));
        assert!(
            hve.points.iter().any(Option::is_none),
            "HVE must hit NA cells"
        );
        let rendered = render_scaling_rows("test", &hve);
        assert!(rendered.render().contains("NA"));
    }

    #[test]
    fn headline_claims_have_paper_shape() {
        let claims = headline_claims(PaperDataset::Large);
        assert!(claims.gd_memory_reduction > 25.0);
        assert!(claims.memory_advantage > 1.5);
        assert!(claims.speed_advantage > 10.0);
        assert!(claims.scalability_advantage >= 9.0);
    }

    #[test]
    fn backend_choice_defaults_to_threaded() {
        if std::env::var_os("PTYCHO_BACKEND").is_none() {
            assert_eq!(BackendChoice::from_env(), BackendChoice::Threaded);
        }
    }

    #[test]
    fn backend_validation_line_reports_the_selected_backend() {
        if std::env::var_os("PTYCHO_BACKEND").is_some() {
            return; // the environment pins a backend; don't fight it
        }
        let line = backend_validation_line();
        assert!(line.contains("threaded backend"), "{line}");
        assert!(line.contains("0 restart(s)"), "{line}");
    }

    #[test]
    fn fig7a_ideal_line_is_linear() {
        let series = fig7a(PaperDataset::Large);
        assert_eq!(series.len(), 6);
        let (g0, _, i0) = series[0];
        let (g1, _, i1) = series[1];
        assert!((i0 * g0 as f64 - i1 * g1 as f64).abs() < 1e-6);
    }

    #[test]
    fn fig7b_appp_always_cheaper() {
        for (_, with, without) in fig7b() {
            assert!(with.communication <= without.communication);
        }
    }
}
