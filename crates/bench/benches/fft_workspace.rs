//! Workspace-API benchmark: the in-place 2D transforms (reusable
//! [`Fft2Scratch`], zero allocations) against the by-value wrappers (clone +
//! throwaway scratch per call) — the ISSUE 4 win, pinned per size so a
//! regression back to allocating transforms trips the bench gate.
//!
//! Both variants time a forward/inverse *round trip* so the in-place buffer
//! stays numerically bounded across iterations and the comparison is
//! apples-to-apples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptycho_array::Array2;
use ptycho_fft::fft2d::Fft2Plan;
use ptycho_fft::Complex64;
use std::time::Duration;

fn field(n: usize) -> Array2<Complex64> {
    Array2::from_fn(n, n, |r, c| {
        Complex64::new((r as f64 * 0.3).sin(), (c as f64 * 0.7).cos())
    })
}

fn bench_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_workspace");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &n in &[64usize, 128, 256] {
        let plan = Fft2Plan::new(n, n);
        let data = field(n);

        group.bench_with_input(BenchmarkId::new("roundtrip_by_value", n), &n, |b, _| {
            b.iter(|| plan.inverse(&plan.forward(&data)))
        });

        let mut buf = data.clone();
        let mut scratch = plan.make_scratch();
        group.bench_with_input(BenchmarkId::new("roundtrip_in_place", n), &n, |b, _| {
            b.iter(|| {
                plan.forward_in_place(&mut buf, &mut scratch);
                plan.inverse_in_place(&mut buf, &mut scratch);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workspace);
criterion_main!(benches);
