//! Durability benchmarks: what the checkpoint layer costs.
//!
//! `durability/checkpoint_persist` times a full 2-iteration job with durable
//! checkpointing enabled — every consistency barrier serializes all four
//! rank slots plus the manifest through the write-temp / fsync / atomic
//! rename protocol. Compare against `jobs_p50_latency/single_job_gd_2x2`
//! (the same job without a store) to read off the persistence overhead.
//!
//! `durability/resume_cold` times the cold-start path a restarted process
//! pays: open the store, scan and checksum the epochs, decode the job spec,
//! resynthesize the dataset, prefill the solver state from the checkpoint
//! and run the job to completion. The store under test holds a job killed
//! at its first commit, so the resumed run does real remaining work rather
//! than returning a finished volume.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{CommError, CrashPhase, FaultPolicy};
use ptycho_core::{JobEngine, JobError, JobSpec, JobState, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tiny_config() -> SolverConfig {
    SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ptycho-bench-durability-{tag}-{}",
        std::process::id()
    ))
}

/// Copies a prepared checkpoint store (epoch dirs of flat files) so each
/// resume sample starts from the identical killed-at-first-commit state.
fn copy_store(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create store copy");
    for entry in std::fs::read_dir(from).expect("read store") {
        let entry = entry.expect("store entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_store(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy checkpoint file");
        }
    }
}

fn bench_checkpoint_persist(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let dir = scratch("persist");
    let _ = std::fs::remove_dir_all(&dir);

    let mut group = c.benchmark_group("durability");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("checkpoint_persist", |b| {
        // The store is reused across samples: each run reopens it, commits
        // two fresh epochs and prunes the stale ones, so the directory stays
        // bounded and every sample pays the same open + persist + prune cost.
        b.iter(|| {
            let engine = JobEngine::new(4);
            let spec =
                JobSpec::new(dataset.clone(), tiny_config(), (2, 2)).with_checkpoint_dir(&dir);
            let report = engine.submit(spec).expect("fits the fleet").wait();
            assert_eq!(report.state, JobState::Completed);
            report
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_resume_cold(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());

    // Prepare the template store once: a 2-iteration job killed right after
    // its first durable commit, leaving epoch 0 on disk.
    let template = scratch("resume-template");
    let _ = std::fs::remove_dir_all(&template);
    let engine = JobEngine::new(4);
    let spec = JobSpec::new(dataset.clone(), tiny_config(), (2, 2))
        .with_checkpoint_dir(&template)
        .with_fault_policy(
            FaultPolicy::reliable(11).kill_process_at_barrier(0, CrashPhase::AfterRename),
        );
    let report = engine.submit(spec).expect("fits the fleet").wait();
    assert!(
        matches!(
            &report.error,
            Some(JobError::Failed(failure))
                if matches!(failure.error, CommError::ProcessKilled { seq: 0, .. })
        ),
        "template job must die at its first commit"
    );

    let work = scratch("resume-work");
    let mut group = c.benchmark_group("durability");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("resume_cold", |b| {
        // Restoring the template (a handful of small files) is part of each
        // sample so every resume starts from the identical killed store; its
        // cost is negligible against the recover + decode + re-run it gates.
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&work);
            copy_store(&template, &work);
            let engine = JobEngine::new(4);
            let report = engine
                .resume(&work)
                .expect("store has a valid epoch")
                .wait();
            assert_eq!(report.state, JobState::Completed);
            report
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&template);
    let _ = std::fs::remove_dir_all(&work);
}

criterion_group!(benches, bench_checkpoint_persist, bench_resume_cold);
criterion_main!(benches);
