//! Job-engine serving benchmarks: what the multi-tenant scheduler costs.
//!
//! `jobs_throughput` times a whole burst (submit → resume → idle) of small
//! reconstructions through the paused engine — the makespan of a 24-job
//! burst on an 8-node fleet, including one rank death healed from the
//! shared pool. Burst throughput is `24 / mean`.
//!
//! `jobs_p50_latency` times one job end-to-end (submit → wait) on an
//! otherwise idle engine — the queue + lease + run + report path a single
//! tenant observes. The stand-in harness reports the mean over its samples,
//! which for this unimodal single-job distribution is the p50 estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::FaultPolicy;
use ptycho_core::{JobEngine, JobSpec, JobState, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

fn tiny_config(iterations: usize) -> SolverConfig {
    SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    }
}

fn bench_jobs_throughput(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());

    let mut group = c.benchmark_group("jobs_throughput");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("burst_24_fleet_8", |b| {
        b.iter(|| {
            let engine = JobEngine::paused(8);
            let mut handles = Vec::with_capacity(24);
            for i in 0..24usize {
                let grid = [(2, 2), (2, 1), (1, 2)][i % 3];
                let mut spec = JobSpec::new(dataset.clone(), tiny_config(1), grid)
                    .with_priority((i % 5) as i32 - 2);
                if i == 7 {
                    // One tenant loses a rank mid-burst: the makespan
                    // includes a shared-pool heal.
                    spec = spec.with_fault_policy(FaultPolicy::reliable(7).kill_rank(1, 1));
                    spec.config.iterations = 2;
                }
                handles.push(engine.submit(spec).expect("fits the fleet"));
            }
            engine.start_admitting();
            engine.wait_idle();
            for handle in &handles {
                assert_eq!(handle.wait().state, JobState::Completed);
            }
        })
    });
    group.finish();
}

fn bench_jobs_latency(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let engine = JobEngine::new(4);

    let mut group = c.benchmark_group("jobs_p50_latency");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("single_job_gd_2x2", |b| {
        b.iter(|| {
            let report = engine
                .submit(JobSpec::new(dataset.clone(), tiny_config(1), (2, 2)))
                .expect("fits the fleet")
                .wait();
            assert_eq!(report.state, JobState::Completed);
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_jobs_throughput, bench_jobs_latency);
criterion_main!(benches);
