//! Micro-benchmark of the per-probe inner loop of Algorithm 1: compute the
//! individual image gradient, accumulate it into the buffer, apply the local
//! update (steps 6–8).

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use ptycho_sim::dataset::{extract_patch, Dataset, SyntheticConfig};
use ptycho_sim::{apply_gradient_step, probe_gradient, suggested_step};
use std::time::Duration;

fn bench_inner_loop(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let model = dataset.model();
    let loc = dataset.scan().locations()[4];
    let truth = dataset.specimen().transmission();
    let mut guess = dataset.initial_guess();
    let step = 0.5 * suggested_step(model);

    let mut group = c.benchmark_group("algorithm1_inner_loop");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("gradient_accumulate_update", |b| {
        b.iter(|| {
            let patch = extract_patch(truth, &loc.window);
            let result = probe_gradient(model, &patch, dataset.measurement(&loc));
            let mut local = extract_patch(&guess, &loc.window);
            apply_gradient_step(&mut local, &result.gradient, step);
            guess.paste_region(loc.window, &local);
            result.loss
        })
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let cluster = Cluster::new(ClusterTopology::summit());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let mut group = c.benchmark_group("gd_full_iteration");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for ranks in [1usize, 4] {
        group.bench_function(format!("{ranks}_ranks"), |b| {
            b.iter(|| {
                GradientDecompositionSolver::for_workers(&dataset, config, ranks).run(&cluster)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inner_loop, bench_full_iteration);
criterion_main!(benches);
