//! Telemetry overhead benchmark: what the flight recorder costs on runs
//! that never fault.
//!
//! The ISSUE 7 acceptance budget is **≤ 10% iteration-time overhead with the
//! recorder on**, so each pair below runs the identical fault-free GD 2×2
//! reconstruction twice — once bare, once with a [`Telemetry`] handle in the
//! job context — under the two engine paths that instrument differently:
//!
//! * `fail_fast` records sends, receives and iteration begin/end pairs;
//! * `spare_pool` (membership mode) additionally records heartbeats,
//!   barrier waits and checkpoints, and exercises the per-barrier
//!   `flush_consistent` watermark walk (a no-op write without a durable
//!   sink, which is the steady-state configuration the gate pins).
//!
//! `record_one_event` prices the primitive itself — one mutex lock plus one
//! ring write — and sits below the gate's noise floor by design.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{ClusterTopology, LockstepBackend};
use ptycho_core::{GradientDecompositionSolver, JobContext, RecoveryPolicy, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use ptycho_telemetry::{Telemetry, TelemetryEvent};
use std::time::Duration;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let spare_pool = RecoveryPolicy::SubstituteSpare {
        spares: 1,
        max_iteration_restarts: 1,
    };

    let mut group = c.benchmark_group("telemetry_overhead");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("gd_2x2_fail_fast_recorder_off", |b| {
        b.iter(|| {
            solver
                .run_job(&backend, RecoveryPolicy::FailFast, &JobContext::default())
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_fail_fast_recorder_on", |b| {
        b.iter(|| {
            // A fresh recorder per run, as the job service attaches one per
            // job — so the figure includes the sink/ring setup cost, not
            // just the steady-state recording.
            let telemetry = Telemetry::new();
            let job = JobContext {
                telemetry: Some(&telemetry),
                ..JobContext::default()
            };
            solver
                .run_job(&backend, RecoveryPolicy::FailFast, &job)
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_spare_pool_recorder_off", |b| {
        b.iter(|| {
            solver
                .run_job(&backend, spare_pool, &JobContext::default())
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_spare_pool_recorder_on", |b| {
        b.iter(|| {
            let telemetry = Telemetry::new();
            let job = JobContext {
                telemetry: Some(&telemetry),
                ..JobContext::default()
            };
            solver
                .run_job(&backend, spare_pool, &job)
                .expect("fault-free run cannot fail")
        })
    });

    // The recording primitive itself: lock + stamp + ring write.
    let telemetry = Telemetry::new();
    let sink = telemetry.sink(0);
    group.bench_function("record_one_event", |b| {
        b.iter(|| {
            sink.record(TelemetryEvent::BarrierWait { iteration: 1 });
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
