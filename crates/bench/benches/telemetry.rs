//! Telemetry overhead benchmark: what the flight recorder costs on runs
//! that never fault.
//!
//! The ISSUE 7 acceptance budget is **≤ 10% iteration-time overhead with the
//! recorder on**, so each pair below runs the identical fault-free GD 2×2
//! reconstruction twice — once bare, once with a [`Telemetry`] handle in the
//! job context — under the two engine paths that instrument differently:
//!
//! * `fail_fast` records sends, receives and iteration begin/end pairs;
//! * `spare_pool` (membership mode) additionally records heartbeats,
//!   barrier waits and checkpoints, and exercises the per-barrier
//!   `flush_consistent` watermark walk (a no-op write without a durable
//!   sink, which is the steady-state configuration the gate pins).
//!
//! `record_one_event` prices the primitive itself — one mutex lock plus one
//! ring write — and sits below the gate's noise floor by design.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{ClusterTopology, LockstepBackend};
use ptycho_core::{GradientDecompositionSolver, JobContext, RecoveryPolicy, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use ptycho_telemetry::{analysis, Telemetry, TelemetryEvent, TelemetryRecord};
use std::time::Duration;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let spare_pool = RecoveryPolicy::SubstituteSpare {
        spares: 1,
        max_iteration_restarts: 1,
    };

    let mut group = c.benchmark_group("telemetry_overhead");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("gd_2x2_fail_fast_recorder_off", |b| {
        b.iter(|| {
            solver
                .run_job(&backend, RecoveryPolicy::FailFast, &JobContext::default())
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_fail_fast_recorder_on", |b| {
        b.iter(|| {
            // A fresh recorder per run, as the job service attaches one per
            // job — so the figure includes the sink/ring setup cost, not
            // just the steady-state recording.
            let telemetry = Telemetry::new();
            let job = JobContext {
                telemetry: Some(&telemetry),
                ..JobContext::default()
            };
            solver
                .run_job(&backend, RecoveryPolicy::FailFast, &job)
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_spare_pool_recorder_off", |b| {
        b.iter(|| {
            solver
                .run_job(&backend, spare_pool, &JobContext::default())
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_spare_pool_recorder_on", |b| {
        b.iter(|| {
            let telemetry = Telemetry::new();
            let job = JobContext {
                telemetry: Some(&telemetry),
                ..JobContext::default()
            };
            solver
                .run_job(&backend, spare_pool, &job)
                .expect("fault-free run cannot fail")
        })
    });

    // The recording primitive itself: lock + stamp + ring write.
    let telemetry = Telemetry::new();
    let sink = telemetry.sink(0);
    group.bench_function("record_one_event", |b| {
        b.iter(|| {
            sink.record(TelemetryEvent::BarrierWait { iteration: 1 });
        })
    });
    group.finish();
}

/// Builds a deterministic ~48k-record multi-rank trace: 8 ranks, 1000
/// iterations, each iteration bracketing one ring send/receive pair. Big
/// enough that the analysis means sit far above the gate's 50 µs noise
/// floor, synthesized (not recorded) so the bench prices the analysis pass
/// alone.
fn synthetic_trace() -> Vec<TelemetryRecord> {
    const RANKS: u64 = 8;
    const ITERATIONS: u64 = 1_000;
    const TAG: u64 = 7;
    let mut records = Vec::with_capacity((RANKS * ITERATIONS * 6) as usize);
    for rank in 0..RANKS {
        let mut seq = 0;
        let mut sim_ns = 0;
        let mut push = |seq: &mut u64, sim_ns: u64, event: TelemetryEvent| {
            records.push(TelemetryRecord {
                rank,
                seq: *seq,
                sim_ns,
                job: 0,
                event,
            });
            *seq += 1;
        };
        for iteration in 0..ITERATIONS {
            // Per-iteration ring traffic: send to the next slot, receive
            // from the previous one, correlation ids exactly as the
            // backends stamp them (sender slot << 32 | send counter).
            push(
                &mut seq,
                sim_ns,
                TelemetryEvent::IterationBegin {
                    iteration,
                    attempt: 0,
                },
            );
            sim_ns += 40;
            push(
                &mut seq,
                sim_ns,
                TelemetryEvent::CommSend {
                    to: (rank + 1) % RANKS,
                    tag: TAG,
                    bytes: 4096,
                    corr: (rank << 32) | iteration,
                },
            );
            sim_ns += 60;
            push(
                &mut seq,
                sim_ns,
                TelemetryEvent::CommRecv {
                    from: (rank + RANKS - 1) % RANKS,
                    tag: TAG,
                    bytes: 4096,
                    corr: (((rank + RANKS - 1) % RANKS) << 32) | iteration,
                },
            );
            sim_ns += 900;
            push(
                &mut seq,
                sim_ns,
                TelemetryEvent::IterationEnd {
                    iteration,
                    attempt: 0,
                    cost: 1.0 / (iteration + 1) as f64,
                    compute_ns: 900 * (iteration + 1),
                    comm_ns: sim_ns - 900 * (iteration + 1),
                },
            );
            push(&mut seq, sim_ns, TelemetryEvent::BarrierWait { iteration });
            sim_ns += 10;
        }
    }
    records
}

fn bench_trace_analysis(c: &mut Criterion) {
    let records = synthetic_trace();
    let mut group = c.benchmark_group("telemetry_analysis");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("span_build", |b| {
        b.iter(|| analysis::span_graph(&records, 0))
    });
    group.bench_function("critical_path", |b| {
        b.iter(|| analysis::critical_path(&records, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead, bench_trace_analysis);
criterion_main!(benches);
