//! Micro-benchmarks for the SIMD butterfly tiers and the pruned partial-FFT
//! path (ISSUE 8). Two groups:
//!
//! * `fft_simd/{scalar,sse2,avx2}_{256,1024}` — the same 2D in-place forward
//!   transform pinned by `fft_2d/serial/*`, once per SIMD tier available on
//!   the machine. Absent tiers (e.g. `avx2` on an SSE2-only host, or both on
//!   a build without `--features simd`) simply emit no key; the gate treats
//!   missing labels as removed benches and new labels as allowed, so the
//!   matrix degrades gracefully across runners.
//! * `fft_partial/{dense,pruned_vs_dense}_{64,128,256}` — a dense
//!   `Fft2Plan` against a `PartialFft2Plan` with a centred `n/4`-square
//!   input support and a centred `n/2`-square output ROI, on a
//!   support-padded input (the workload the multislice entry/far-field
//!   pruning seams produce). The pair of keys makes the asymptotic win
//!   directly readable from BENCH_baseline.json.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_array::{Array2, Rect};
use ptycho_fft::fft2d::Fft2Plan;
use ptycho_fft::{Complex64, PartialFft2Plan, SimdLevel};
use std::time::Duration;

fn field(n: usize) -> Array2<Complex64> {
    Array2::from_fn(n, n, |r, c| {
        Complex64::new((r as f64 * 0.3).sin(), (c as f64 * 0.7).cos())
    })
}

/// A field that is exactly zero (positive zeros) outside the given support —
/// the shape the probe support-padding seam feeds the pruned entry plan.
fn supported_field(n: usize, support: &Rect) -> Array2<Complex64> {
    Array2::from_fn(n, n, |r, c| {
        if support.contains(r as i64, c as i64) {
            Complex64::new((r as f64 * 0.3).sin(), (c as f64 * 0.7).cos())
        } else {
            Complex64::ZERO
        }
    })
}

fn centred_square(n: usize, side: usize) -> Rect {
    let off = ((n - side) / 2) as i64;
    Rect::new(off, off, side as i64, side as i64)
}

fn bench_fft_simd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_simd");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for &n in &[256usize, 1024] {
        let data = field(n);
        for level in SimdLevel::available_levels() {
            let plan = Fft2Plan::with_simd_level(n, n, level);
            let mut buf = data.clone();
            let mut scratch = plan.make_scratch();
            group.bench_function(format!("{}_{n}", level.label()), |b| {
                b.iter(|| {
                    buf.copy_from(&data);
                    plan.forward_in_place(&mut buf, &mut scratch);
                })
            });
        }
    }
    group.finish();
}

fn bench_fft_partial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_partial");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &n in &[64usize, 128, 256] {
        let support = centred_square(n, n / 4);
        let roi = centred_square(n, n / 2);
        let data = supported_field(n, &support);

        let dense = Fft2Plan::new(n, n);
        let mut scratch = dense.make_scratch();
        let mut buf = data.clone();
        group.bench_function(format!("dense_{n}"), |b| {
            b.iter(|| {
                buf.copy_from(&data);
                dense.forward_in_place(&mut buf, &mut scratch);
            })
        });

        let pruned = PartialFft2Plan::new(n, n)
            .with_input_support(support)
            .with_output_roi(roi);
        group.bench_function(format!("pruned_vs_dense_{n}"), |b| {
            b.iter(|| {
                buf.copy_from(&data);
                pruned.forward_in_place(&mut buf, &mut scratch);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_simd, bench_fft_partial);
criterion_main!(benches);
