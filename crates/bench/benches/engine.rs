//! Engine-overhead benchmark: what the fault-tolerant iteration engine costs
//! on the fault-free path.
//!
//! `fail_fast` is the zero-overhead configuration (no reliable wrapping, no
//! barriers, no checkpoints) and doubles as the regression pin for the
//! solver-into-kernel refactor; `retransmit_restart` adds the full recovery
//! machinery — sequence-numbered acks, a per-iteration consistency barrier
//! and a per-iteration tile-volume checkpoint — on a run that never faults,
//! which is exactly the overhead a cautious production deployment would pay.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{ClusterTopology, LockstepBackend};
use ptycho_core::{GradientDecompositionSolver, RecoveryPolicy, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let backend = LockstepBackend::new(ClusterTopology::summit());

    let mut group = c.benchmark_group("engine_recovery");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("gd_2x2_fail_fast_lockstep", |b| {
        b.iter(|| solver.run(&backend))
    });
    group.bench_function("gd_2x2_retransmit_restart_lockstep", |b| {
        b.iter(|| {
            solver
                .run_with_recovery(
                    &backend,
                    RecoveryPolicy::RetransmitThenRestart {
                        max_iteration_restarts: 1,
                    },
                )
                .expect("fault-free run cannot fail")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
