//! Engine-overhead benchmark: what the fault-tolerant iteration engine costs
//! on the fault-free path.
//!
//! `fail_fast` is the zero-overhead configuration (no reliable wrapping, no
//! barriers, no checkpoints) and doubles as the regression pin for the
//! solver-into-kernel refactor; `retransmit_restart` adds the full recovery
//! machinery — sequence-numbered acks, a per-iteration consistency barrier
//! and a per-iteration tile-volume checkpoint — on a run that never faults,
//! which is exactly the overhead a cautious production deployment would pay.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_cluster::{
    ClusterTopology, FaultInjectionBackend, FaultPolicy, LockstepBackend, SharedTile,
};
use ptycho_core::tiling::TileGrid;
use ptycho_core::{GradientDecompositionSolver, RecoveryPolicy, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

/// Wire payload bytes one GD iteration moves between tiles (one round of the
/// four directional passes: every rank with a successor sends its overlap
/// forward, every rank with a predecessor sends it backward, per axis).
/// Before ISSUE 4 each of these buffers was additionally *deep-copied* per
/// hop by the reliable layer's retransmit outbox and by fault-injection
/// duplication; with `SharedTile` payloads those copies are Arc clones, so
/// the copy traffic per iteration drops from this figure to ~16 bytes/hop.
fn payload_bytes_per_iteration(grid: &TileGrid, slices: usize) -> usize {
    let (grid_rows, grid_cols) = grid.grid_shape();
    let mut bytes = 0usize;
    for gr in 0..grid_rows {
        for gc in 0..grid_cols {
            let rank = grid.rank_at(gr, gc);
            // Forward + backward sweeps exchange the same overlap region, so
            // each in-grid neighbour pair moves it twice per axis.
            if gr + 1 < grid_rows {
                let overlap = grid.overlap(rank, grid.rank_at(gr + 1, gc));
                bytes += 2 * overlap.area() * slices * 2 * std::mem::size_of::<f64>();
            }
            if gc + 1 < grid_cols {
                let overlap = grid.overlap(rank, grid.rank_at(gr, gc + 1));
                bytes += 2 * overlap.area() * slices * 2 * std::mem::size_of::<f64>();
            }
        }
    }
    bytes
}

fn bench_engine(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let backend = LockstepBackend::new(ClusterTopology::summit());

    let slices = dataset.object_shape().0;
    eprintln!(
        "engine bench: GD 2x2 moves {} payload bytes per iteration; \
         SharedTile makes every comm-layer copy of them an Arc clone",
        payload_bytes_per_iteration(solver.grid(), slices)
    );

    let mut group = c.benchmark_group("engine_recovery");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("gd_2x2_fail_fast_lockstep", |b| {
        b.iter(|| solver.run(&backend))
    });
    group.bench_function("gd_2x2_retransmit_restart_lockstep", |b| {
        b.iter(|| {
            solver
                .run_with_recovery(
                    &backend,
                    RecoveryPolicy::RetransmitThenRestart {
                        max_iteration_restarts: 1,
                    },
                )
                .expect("fault-free run cannot fail")
        })
    });
    group.finish();
}

/// What spare-rank substitution (ISSUE 5) costs.
///
/// `spare_pool_fault_free` is the price of *standing ready*: a run under
/// `RecoveryPolicy::SubstituteSpare` with no faults pays the retransmit+
/// restart machinery plus one ring heartbeat control frame per rank per
/// iteration — this is the overhead a deployment accepts to survive node
/// loss. `one_rank_death_heal` is the time to *heal*: node 1 is killed
/// early in the first attempt, the failure is detected, a spare adopts its
/// tile from the last consistency-barrier checkpoint, and the whole
/// reconstruction re-runs to a bit-identical volume — so the figure covers
/// detection, promotion and the healed re-run end to end.
fn bench_spare_substitution(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let policy = RecoveryPolicy::SubstituteSpare {
        spares: 1,
        max_iteration_restarts: 1,
    };

    let mut group = c.benchmark_group("engine_spare_substitution");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("gd_2x2_spare_pool_fault_free_lockstep", |b| {
        b.iter(|| {
            solver
                .run_with_recovery(&backend, policy)
                .expect("fault-free run cannot fail")
        })
    });
    group.bench_function("gd_2x2_one_rank_death_heal_lockstep", |b| {
        b.iter(|| {
            let faulty = FaultInjectionBackend::new(
                LockstepBackend::new(ClusterTopology::summit()),
                FaultPolicy::reliable(0).kill_rank(1, 1),
            );
            let healed = solver
                .run_with_recovery(&faulty, policy)
                .expect("the spare must heal the death");
            assert_eq!(healed.recovery.substitutions, 1);
            healed
        })
    });
    group.finish();
}

/// Pins the zero-copy payload property in time units: cloning a tile-sized
/// `Vec<f64>` (what every retransmit-buffer insert and fault-injection
/// duplicate cost before ISSUE 4) against cloning a [`SharedTile`] (an `Arc`
/// pointer bump). A regression back to deep-copy payloads shows up as this
/// ratio collapsing.
fn bench_payload_clone(c: &mut Criterion) {
    // A realistic tile payload: 64 px halo-overlap row of a 2-slice volume
    // (~1 MiB), interleaved re/im.
    let values = vec![0.5f64; 128 * 1024];
    let shared = SharedTile::new(values.clone());

    let mut group = c.benchmark_group("payload_clone");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("deep_vec_1mib", |b| b.iter(|| values.clone()));
    group.bench_function("shared_tile_1mib", |b| b.iter(|| shared.clone()));
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_spare_substitution,
    bench_payload_clone
);
criterion_main!(benches);
