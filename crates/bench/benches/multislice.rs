//! Micro-benchmarks for the multi-slice forward model `G` and its adjoint
//! gradient (the per-probe kernel of Eqn. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptycho_array::Array3;
use ptycho_fft::Complex64;
use ptycho_sim::physics::ImagingGeometry;
use ptycho_sim::probe::{Probe, ProbeConfig};
use ptycho_sim::{probe_gradient, MultisliceModel};
use std::time::Duration;

fn model(window: usize, slices: usize) -> MultisliceModel {
    let probe = Probe::new(ProbeConfig {
        window_px: window,
        geometry: ImagingGeometry {
            pixel_size_pm: 50.0,
            defocus_pm: 10_000.0,
            ..ImagingGeometry::paper()
        },
        total_intensity: 1.0,
    });
    MultisliceModel::new(probe, slices)
}

fn phase_object(slices: usize, n: usize) -> Array3<Complex64> {
    Array3::from_fn(slices, n, n, |s, r, c| {
        Complex64::cis(0.2 * ((r + c + s) as f64 * 0.31).sin())
    })
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("multislice_forward");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &(window, slices) in &[(32usize, 2usize), (32, 8), (64, 4)] {
        let m = model(window, slices);
        let object = phase_object(slices, window);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{window}px_{slices}slices")),
            &window,
            |b, _| b.iter(|| m.forward(&object)),
        );
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_gradient");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &(window, slices) in &[(32usize, 2usize), (64, 4)] {
        let m = model(window, slices);
        let truth = phase_object(slices, window);
        let measured = m.simulate_amplitude(&truth);
        let guess = Array3::full(slices, window, window, Complex64::ONE);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{window}px_{slices}slices")),
            &window,
            |b, _| b.iter(|| probe_gradient(&m, &guess, &measured)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_gradient);
criterion_main!(benches);
