//! Micro-benchmarks for the directional accumulation passes (Fig. 4) and the
//! gradient-message serialisation they rely on, parameterised over the
//! communication backend (threaded vs. deterministic lockstep).

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_array::Array3;
use ptycho_cluster::{
    Cluster, ClusterTopology, CommBackend, LockstepBackend, RankComm, SharedTile, TilePayloadPool,
};
use ptycho_core::gradient_decomp::passes::run_accumulation_passes;
use ptycho_core::tiling::TileGrid;
use ptycho_fft::{CArray3, Complex64};
use ptycho_sim::scan::{ScanConfig, ScanPattern};
use std::time::Duration;

fn scan(image: usize) -> ScanPattern {
    ScanPattern::generate(ScanConfig {
        rows: 4,
        cols: 4,
        step_px: (image / 5) as f64,
        origin_px: (8.0, 8.0),
        window_px: 16,
        probe_radius_px: 8.0,
    })
}

fn buffers_for(grid: &TileGrid, slices: usize) -> Vec<CArray3> {
    (0..grid.num_tiles())
        .map(|rank| {
            let ext = grid.tile(rank).extended;
            Array3::from_fn(slices, ext.rows(), ext.cols(), |s, r, c| {
                Complex64::new((rank + s + r + c) as f64 * 0.01, 0.5)
            })
        })
        .collect()
}

fn run_once<B: CommBackend>(backend: &B, grid: &TileGrid, initial: &[CArray3]) {
    backend
        .run::<SharedTile, (), _>(grid.num_tiles(), |ctx| {
            let mut buffer = initial[ctx.rank()].clone();
            let mut pool = TilePayloadPool::new();
            run_accumulation_passes(ctx, grid, &mut buffer, &mut pool)?;
            Ok(())
        })
        .expect("no faults injected");
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulation_passes");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for &(grid_rows, grid_cols) in &[(2usize, 2usize), (3, 3)] {
        let image = 96;
        let slices = 2;
        let s = scan(image);
        let grid = TileGrid::new(image, image, grid_rows, grid_cols, 8, &s);
        let threaded = Cluster::new(ClusterTopology::summit());
        let lockstep = LockstepBackend::new(ClusterTopology::summit());
        let initial = buffers_for(&grid, slices);
        group.bench_function(format!("{grid_rows}x{grid_cols}_grid_threaded"), |b| {
            b.iter(|| run_once(&threaded, &grid, &initial))
        });
        group.bench_function(format!("{grid_rows}x{grid_cols}_grid_lockstep"), |b| {
            b.iter(|| run_once(&lockstep, &grid, &initial))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
