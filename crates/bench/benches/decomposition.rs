//! End-to-end benchmarks: Gradient Decomposition vs. Halo Voxel Exchange on a
//! synthetic dataset, and the analytic scaling-table generation behind Tables
//! II/III.

use criterion::{criterion_group, criterion_main, Criterion};
use ptycho_bench::experiments::{scaling_tables, PaperDataset};
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::{GradientDecompositionSolver, HaloVoxelExchangeSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

fn bench_methods(c: &mut Criterion) {
    let dataset = Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (4, 4),
        window_px: 32,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 3,
    });
    let cluster = Cluster::new(ClusterTopology::summit());

    let mut group = c.benchmark_group("method_comparison_one_iteration");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let gd_config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    group.bench_function("gradient_decomposition_2x2", |b| {
        b.iter(|| GradientDecompositionSolver::new(&dataset, gd_config, (2, 2)).run(&cluster))
    });
    let hve_config = SolverConfig {
        iterations: 1,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    group.bench_function("halo_voxel_exchange_2x2", |b| {
        b.iter(|| {
            HaloVoxelExchangeSolver::new(&dataset, hve_config, (2, 2))
                .expect("feasible")
                .run(&cluster)
        })
    });
    group.finish();
}

fn bench_scaling_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_model");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function("table3_generation", |b| {
        b.iter(|| scaling_tables(PaperDataset::Large))
    });
    group.finish();
}

criterion_group!(benches, bench_methods, bench_scaling_model);
criterion_main!(benches);
