//! Micro-benchmarks for the FFT substrate (the kernel whose N log N cost the
//! paper identifies as the source of super-linear scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptycho_array::Array2;
use ptycho_fft::fft2d::Fft2Plan;
use ptycho_fft::{dft, Complex64, FftPlan};
use std::time::Duration;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn field(n: usize) -> Array2<Complex64> {
    Array2::from_fn(n, n, |r, c| {
        Complex64::new((r as f64 * 0.3).sin(), (c as f64 * 0.7).cos())
    })
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let input = signal(n);
        group.bench_with_input(BenchmarkId::new("radix2_plan", n), &n, |b, _| {
            b.iter(|| {
                let mut data = input.clone();
                plan.forward(&mut data);
                data
            })
        });
    }
    // The naive reference, to show the gap the fast transform closes.
    let input = signal(256);
    group.bench_function("naive_dft_256", |b| b.iter(|| dft::dft(&input)));
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    // These keys measure the *hot-path* call the solvers actually make since
    // ISSUE 4: in-place transforms over a pre-allocated Fft2Scratch (a fresh
    // copy of the input per iteration, like a propagation step working on a
    // wave buffer). The by-value wrappers are pinned separately in
    // benches/fft_workspace.rs. 256 sits at the measured scalar parallel
    // crossover (see PARALLEL_MIN_ELEMS), so multi-core scalar builds show
    // the fan-out win there while smaller sizes auto-select the serial path
    // (under `--features simd` the crossover moves to 512, so every size
    // here auto-serialises and the serial/parallel pair should read equal).
    for &n in &[64usize, 128, 256] {
        let plan = Fft2Plan::new(n, n);
        let data = field(n);
        let mut buf = data.clone();
        let mut scratch = plan.make_scratch();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                buf.copy_from(&data);
                plan.forward_in_place(&mut buf, &mut scratch);
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon_parallel", n), &n, |b, _| {
            b.iter(|| {
                buf.copy_from(&data);
                plan.forward_par_in_place(&mut buf, &mut scratch);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
