//! Dense stacks of 2D slices.

use crate::{Array2, Rect, Shape3};
use std::ops::{AddAssign, Index, IndexMut};

/// A dense 3D array stored as `depth` contiguous row-major 2D slices.
///
/// The reconstruction volume `V` of the multi-slice model is an `Array3`:
/// `depth` is the number of object slices along the beam direction `z`, and each
/// slice is a `rows x cols` image in the `x-y` plane (Fig. 1(c) of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct Array3<T> {
    depth: usize,
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Array3<T> {
    /// Creates a volume of the given shape filled with `T::default()`.
    pub fn zeros(depth: usize, rows: usize, cols: usize) -> Self {
        Self {
            depth,
            rows,
            cols,
            data: vec![T::default(); depth * rows * cols],
        }
    }
}

impl<T: Clone> Array3<T> {
    /// Creates a volume of the given shape filled with `value`.
    pub fn full(depth: usize, rows: usize, cols: usize, value: T) -> Self {
        Self {
            depth,
            rows,
            cols,
            data: vec![value; depth * rows * cols],
        }
    }

    /// Builds a volume by evaluating `f(slice, row, col)` at every voxel.
    pub fn from_fn(
        depth: usize,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(depth * rows * cols);
        for s in 0..depth {
            for r in 0..rows {
                for c in 0..cols {
                    data.push(f(s, r, c));
                }
            }
        }
        Self {
            depth,
            rows,
            cols,
            data,
        }
    }

    /// Builds a volume from a vector of equally-shaped slices.
    ///
    /// # Panics
    /// Panics if the slices have differing shapes or the vector is empty.
    pub fn from_slices(slices: Vec<Array2<T>>) -> Self {
        assert!(!slices.is_empty(), "Array3::from_slices: no slices given");
        let (rows, cols) = slices[0].shape();
        for s in &slices {
            assert_eq!(s.shape(), (rows, cols), "from_slices: inconsistent shapes");
        }
        let depth = slices.len();
        let mut data = Vec::with_capacity(depth * rows * cols);
        for s in slices {
            data.extend(s.into_vec());
        }
        Self {
            depth,
            rows,
            cols,
            data,
        }
    }

    /// Copies slice `s` out as an [`Array2`].
    pub fn slice(&self, s: usize) -> Array2<T> {
        assert!(s < self.depth, "slice {} out of bounds ({})", s, self.depth);
        let n = self.rows * self.cols;
        Array2::from_vec(self.rows, self.cols, self.data[s * n..(s + 1) * n].to_vec())
    }

    /// Overwrites slice `s` with `plane`.
    pub fn set_slice(&mut self, s: usize, plane: &Array2<T>) {
        assert!(s < self.depth, "slice {} out of bounds ({})", s, self.depth);
        assert_eq!(
            plane.shape(),
            (self.rows, self.cols),
            "set_slice: shape mismatch"
        );
        let n = self.rows * self.cols;
        self.data[s * n..(s + 1) * n].clone_from_slice(plane.as_slice());
    }

    /// Extracts the same rectangular `region` from every slice, producing a
    /// smaller volume of shape `(depth, region.rows(), region.cols())`.
    /// Out-of-bounds cells are filled with `fill`.
    pub fn extract_region_with_fill(&self, region: Rect, fill: T) -> Array3<T> {
        let mut out = Array3::full(self.depth, region.rows(), region.cols(), fill.clone());
        self.extract_region_into(region, fill, &mut out);
        out
    }

    /// Overwrites every voxel with `value` (an allocation-free reset).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// The allocation-free sibling of [`Self::extract_region_with_fill`]:
    /// writes the extracted region into a caller-owned volume of shape
    /// `(depth, region.rows(), region.cols())`, so repeated probe-window
    /// extractions reuse one buffer.
    ///
    /// # Panics
    /// Panics if `out` does not have the expected shape.
    pub fn extract_region_into(&self, region: Rect, fill: T, out: &mut Array3<T>) {
        let (rrows, rcols) = region.shape();
        assert_eq!(
            out.shape(),
            (self.depth, rrows, rcols),
            "extract_region_into: output shape {:?} does not match (depth, region) {:?}",
            out.shape(),
            (self.depth, rrows, rcols)
        );
        out.data.fill(fill);
        let clipped = region.intersect(&self.plane_bounds());
        let width = (clipped.col1 - clipped.col0).max(0) as usize;
        if width == 0 {
            return;
        }
        for s in 0..self.depth {
            let src = self.slice_data(s);
            let dst = out.slice_data_mut(s);
            for gr in clipped.row0..clipped.row1 {
                let lr = (gr - region.row0) as usize;
                let src_off = gr as usize * self.cols + clipped.col0 as usize;
                let dst_off = lr * rcols + (clipped.col0 - region.col0) as usize;
                dst[dst_off..dst_off + width].clone_from_slice(&src[src_off..src_off + width]);
            }
        }
    }

    /// Writes `block` (one sub-plane per slice) into `region` of every slice.
    pub fn paste_region(&mut self, region: Rect, block: &Array3<T>) {
        assert_eq!(block.depth, self.depth, "paste_region: depth mismatch");
        for s in 0..self.depth {
            let mut plane = self.slice(s);
            plane.paste_region(region, &block.slice(s));
            self.set_slice(s, &plane);
        }
    }
}

impl<T: Clone + Default> Array3<T> {
    /// Extracts `region` from every slice, filling out-of-bounds cells with
    /// `T::default()`.
    pub fn extract_region(&self, region: Rect) -> Array3<T> {
        self.extract_region_with_fill(region, T::default())
    }
}

impl<T> Array3<T> {
    /// Number of slices along the beam direction.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Rows of each slice.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of each slice.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(depth, rows, cols)` shape.
    pub fn shape(&self) -> Shape3 {
        (self.depth, self.rows, self.cols)
    }

    /// Total number of voxels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the volume holds no voxels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The in-plane bounds rectangle `[0, rows) x [0, cols)`.
    pub fn plane_bounds(&self) -> Rect {
        Rect::of_shape(self.rows, self.cols)
    }

    /// Flat view of the data (slice-major, then row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow slice `s` as a flat row-major sub-slice without copying.
    pub fn slice_data(&self, s: usize) -> &[T] {
        let n = self.rows * self.cols;
        &self.data[s * n..(s + 1) * n]
    }

    /// Mutably borrow slice `s` as a flat row-major sub-slice without copying.
    pub fn slice_data_mut(&mut self, s: usize) -> &mut [T] {
        let n = self.rows * self.cols;
        &mut self.data[s * n..(s + 1) * n]
    }

    /// Iterates over references to all voxels.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates over mutable references to all voxels.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Applies `f` to every voxel, producing a new volume.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Array3<U> {
        Array3 {
            depth: self.depth,
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Applies `f` to every voxel in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }

    /// Combines two equally-shaped volumes elementwise.
    pub fn zip_map<U, V>(&self, other: &Array3<U>, mut f: impl FnMut(&T, &U) -> V) -> Array3<V> {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Array3 {
            depth: self.depth,
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }
}

impl<T> Array3<T>
where
    T: Copy + AddAssign,
{
    /// Adds `other` elementwise into `self`.
    pub fn add_assign_elementwise(&mut self, other: &Array3<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Adds `block` (one sub-plane per slice) into `region` of every slice,
    /// clipping against the volume bounds.
    pub fn add_region(&mut self, region: Rect, block: &Array3<T>)
    where
        T: Clone,
    {
        assert_eq!(block.depth, self.depth, "add_region: depth mismatch");
        assert_eq!(
            (block.rows, block.cols),
            region.shape(),
            "add_region: block plane shape {:?} does not match region shape {:?}",
            (block.rows, block.cols),
            region.shape()
        );
        let bounds = self.plane_bounds();
        let clipped = region.intersect(&bounds);
        let plane_len = self.rows * self.cols;
        let block_plane_len = block.rows * block.cols;
        for s in 0..self.depth {
            let dst = &mut self.data[s * plane_len..(s + 1) * plane_len];
            let src = &block.data[s * block_plane_len..(s + 1) * block_plane_len];
            for gr in clipped.row0..clipped.row1 {
                let lr = (gr - region.row0) as usize;
                for gc in clipped.col0..clipped.col1 {
                    let lc = (gc - region.col0) as usize;
                    dst[gr as usize * self.cols + gc as usize] += src[lr * block.cols + lc];
                }
            }
        }
    }
}

impl<T> Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;

    #[inline]
    fn index(&self, (s, r, c): (usize, usize, usize)) -> &T {
        debug_assert!(s < self.depth && r < self.rows && c < self.cols);
        &self.data[(s * self.rows + r) * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, (s, r, c): (usize, usize, usize)) -> &mut T {
        debug_assert!(s < self.depth && r < self.rows && c < self.cols);
        &mut self.data[(s * self.rows + r) * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_indexing() {
        let mut v = Array3::<f64>::zeros(3, 4, 5);
        assert_eq!(v.shape(), (3, 4, 5));
        assert_eq!(v.len(), 60);
        v[(2, 3, 4)] = 1.5;
        assert_eq!(v[(2, 3, 4)], 1.5);
        assert_eq!(v[(0, 0, 0)], 0.0);
    }

    #[test]
    fn slice_roundtrip() {
        let v = Array3::from_fn(2, 3, 3, |s, r, c| (s * 100 + r * 10 + c) as i32);
        let s1 = v.slice(1);
        assert_eq!(s1[(2, 2)], 122);
        let mut v2 = v.clone();
        let plane = Array2::full(3, 3, -1);
        v2.set_slice(0, &plane);
        assert_eq!(v2[(0, 1, 1)], -1);
        assert_eq!(v2[(1, 1, 1)], 111);
    }

    #[test]
    fn from_slices_matches_from_fn() {
        let slices = vec![
            Array2::from_fn(2, 2, |r, c| (r * 2 + c) as f64),
            Array2::from_fn(2, 2, |r, c| (10 + r * 2 + c) as f64),
        ];
        let v = Array3::from_slices(slices);
        let w = Array3::from_fn(2, 2, 2, |s, r, c| (s * 10 + r * 2 + c) as f64);
        assert_eq!(v, w);
    }

    #[test]
    #[should_panic(expected = "inconsistent shapes")]
    fn from_slices_shape_mismatch_panics() {
        let _ = Array3::from_slices(vec![Array2::<f64>::zeros(2, 2), Array2::zeros(3, 3)]);
    }

    #[test]
    fn extract_and_paste_region() {
        let v = Array3::from_fn(2, 4, 4, |s, r, c| (s * 16 + r * 4 + c) as f64);
        let region = Rect::new(1, 1, 2, 2);
        let sub = v.extract_region(region);
        assert_eq!(sub.shape(), (2, 2, 2));
        assert_eq!(sub[(0, 0, 0)], 5.0);
        assert_eq!(sub[(1, 1, 1)], 26.0);

        let mut w = Array3::<f64>::zeros(2, 4, 4);
        w.paste_region(region, &sub);
        assert_eq!(w[(1, 2, 2)], 26.0);
        assert_eq!(w[(1, 0, 0)], 0.0);
    }

    #[test]
    fn extract_region_clips_outside() {
        let v = Array3::full(1, 2, 2, 3.0f64);
        let sub = v.extract_region(Rect::new(-1, -1, 3, 3));
        assert_eq!(sub.shape(), (1, 3, 3));
        assert_eq!(sub[(0, 0, 0)], 0.0);
        assert_eq!(sub[(0, 1, 1)], 3.0);
    }

    #[test]
    fn extract_region_into_matches_allocating_extract() {
        let v = Array3::from_fn(3, 5, 6, |s, r, c| (s * 100 + r * 10 + c) as f64);
        for &region in &[
            Rect::new(1, 2, 3, 3),
            Rect::new(-2, -1, 4, 4),
            Rect::new(3, 4, 4, 4),
            Rect::new(10, 10, 2, 2),
        ] {
            let expected = v.extract_region_with_fill(region, -1.0);
            let mut out = Array3::full(3, region.rows(), region.cols(), 0.0);
            v.extract_region_into(region, -1.0, &mut out);
            assert_eq!(out, expected, "region {region:?}");
        }
    }

    #[test]
    #[should_panic(expected = "extract_region_into")]
    fn extract_region_into_wrong_shape_panics() {
        let v = Array3::full(1, 4, 4, 0.0f64);
        let mut out = Array3::full(1, 2, 3, 0.0);
        v.extract_region_into(Rect::new(0, 0, 2, 2), 0.0, &mut out);
    }

    #[test]
    fn fill_resets_every_voxel() {
        let mut v = Array3::from_fn(2, 2, 2, |s, r, c| (s + r + c) as f64);
        v.fill(0.0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn add_region_accumulates_and_clips() {
        let mut v = Array3::<f64>::zeros(2, 3, 3);
        let block = Array3::full(2, 2, 2, 1.0);
        v.add_region(Rect::new(2, 2, 2, 2), &block);
        assert_eq!(v[(0, 2, 2)], 1.0);
        assert_eq!(v[(1, 2, 2)], 1.0);
        let total: f64 = v.iter().sum();
        assert_eq!(total, 2.0);
    }

    #[test]
    fn map_and_zip_map() {
        let v = Array3::full(2, 2, 2, 2.0f64);
        let sq = v.map(|x| x * x);
        assert!(sq.iter().all(|&x| x == 4.0));
        let sum = v.zip_map(&sq, |a, b| a + b);
        assert!(sum.iter().all(|&x| x == 6.0));
    }

    #[test]
    fn add_assign_elementwise_volume() {
        let mut v = Array3::full(1, 2, 2, 1.0f64);
        let w = Array3::full(1, 2, 2, 0.25f64);
        v.add_assign_elementwise(&w);
        assert!(v.iter().all(|&x| (x - 1.25).abs() < 1e-12));
    }

    #[test]
    fn slice_data_views() {
        let mut v = Array3::from_fn(2, 2, 2, |s, r, c| (s * 4 + r * 2 + c) as u32);
        assert_eq!(v.slice_data(1), &[4, 5, 6, 7]);
        v.slice_data_mut(0)[0] = 99;
        assert_eq!(v[(0, 0, 0)], 99);
    }
}
