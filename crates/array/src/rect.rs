//! Half-open axis-aligned rectangles.
//!
//! `Rect` is the geometric vocabulary of the decomposition logic: image tiles,
//! halo-extended tiles, probe-location bounding boxes and the overlap regions in
//! which image gradients are accumulated are all `Rect`s. Coordinates are signed
//! so that halo extensions near the image border can temporarily leave the image
//! before being clamped back onto it.

use std::fmt;

/// A half-open axis-aligned rectangle `[row0, row1) x [col0, col1)` with signed
/// coordinates.
///
/// The rectangle is *empty* when `row1 <= row0` or `col1 <= col0`. Empty
/// rectangles are normal values: intersecting two disjoint tiles produces one,
/// and all queries on them behave sensibly (`area() == 0`, `contains(..) == false`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Inclusive first row.
    pub row0: i64,
    /// Exclusive last row.
    pub row1: i64,
    /// Inclusive first column.
    pub col0: i64,
    /// Exclusive last column.
    pub col1: i64,
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rect[{}..{}, {}..{}]",
            self.row0, self.row1, self.col0, self.col1
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Rect {
    /// Creates a rectangle from its top-left corner `(row0, col0)` and its size
    /// `(rows, cols)`.
    pub fn new(row0: i64, col0: i64, rows: i64, cols: i64) -> Self {
        Self {
            row0,
            row1: row0 + rows,
            col0,
            col1: col0 + cols,
        }
    }

    /// Creates a rectangle from corner coordinates `[row0, row1) x [col0, col1)`.
    pub fn from_corners(row0: i64, row1: i64, col0: i64, col1: i64) -> Self {
        Self {
            row0,
            row1,
            col0,
            col1,
        }
    }

    /// The empty rectangle at the origin.
    pub fn empty() -> Self {
        Self {
            row0: 0,
            row1: 0,
            col0: 0,
            col1: 0,
        }
    }

    /// Rectangle covering an entire array of shape `(rows, cols)`.
    pub fn of_shape(rows: usize, cols: usize) -> Self {
        Self::new(0, 0, rows as i64, cols as i64)
    }

    /// Number of rows (zero when empty).
    pub fn rows(&self) -> usize {
        (self.row1 - self.row0).max(0) as usize
    }

    /// Number of columns (zero when empty).
    pub fn cols(&self) -> usize {
        (self.col1 - self.col0).max(0) as usize
    }

    /// `(rows, cols)` size of the rectangle.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Number of cells covered by the rectangle.
    pub fn area(&self) -> usize {
        self.rows() * self.cols()
    }

    /// True when the rectangle covers no cells.
    pub fn is_empty(&self) -> bool {
        self.row1 <= self.row0 || self.col1 <= self.col0
    }

    /// True when `(row, col)` lies inside the rectangle.
    pub fn contains(&self, row: i64, col: i64) -> bool {
        row >= self.row0 && row < self.row1 && col >= self.col0 && col < self.col1
    }

    /// True when `other` lies entirely inside `self` (empty rectangles are
    /// contained in everything).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        other.row0 >= self.row0
            && other.row1 <= self.row1
            && other.col0 >= self.col0
            && other.col1 <= self.col1
    }

    /// Intersection of two rectangles (possibly empty).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let r = Rect {
            row0: self.row0.max(other.row0),
            row1: self.row1.min(other.row1),
            col0: self.col0.max(other.col0),
            col1: self.col1.min(other.col1),
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// True when the two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Smallest rectangle containing both inputs. The union of an empty
    /// rectangle with `r` is `r`.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            row0: self.row0.min(other.row0),
            row1: self.row1.max(other.row1),
            col0: self.col0.min(other.col0),
            col1: self.col1.max(other.col1),
        }
    }

    /// Translates the rectangle by `(drow, dcol)`.
    pub fn translate(&self, drow: i64, dcol: i64) -> Rect {
        Rect {
            row0: self.row0 + drow,
            row1: self.row1 + drow,
            col0: self.col0 + dcol,
            col1: self.col1 + dcol,
        }
    }

    /// Grows the rectangle by `margin` cells on every side (a halo extension).
    /// A negative margin shrinks it; over-shrinking yields an empty rectangle.
    pub fn dilate(&self, margin: i64) -> Rect {
        let r = Rect {
            row0: self.row0 - margin,
            row1: self.row1 + margin,
            col0: self.col0 - margin,
            col1: self.col1 + margin,
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Grows the rectangle by independent margins on each side
    /// `(top, bottom, left, right)`.
    pub fn dilate_sides(&self, top: i64, bottom: i64, left: i64, right: i64) -> Rect {
        let r = Rect {
            row0: self.row0 - top,
            row1: self.row1 + bottom,
            col0: self.col0 - left,
            col1: self.col1 + right,
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Clamps the rectangle to lie inside `bounds` (equivalent to intersecting).
    pub fn clamp_to(&self, bounds: &Rect) -> Rect {
        self.intersect(bounds)
    }

    /// Expresses this rectangle in the local coordinate frame whose origin is the
    /// top-left corner of `frame`.
    ///
    /// Used to convert a global overlap region into indices of a tile-local
    /// buffer: if `frame` is the halo-extended tile and `self` is the global
    /// overlap region, the result indexes directly into the tile's array.
    pub fn to_local(&self, frame: &Rect) -> Rect {
        self.translate(-frame.row0, -frame.col0)
    }

    /// Inverse of [`Rect::to_local`]: expresses a frame-local rectangle in global
    /// coordinates.
    pub fn to_global(&self, frame: &Rect) -> Rect {
        self.translate(frame.row0, frame.col0)
    }

    /// The centre of the rectangle in floating-point coordinates `(row, col)`.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.row0 + self.row1) as f64 / 2.0,
            (self.col0 + self.col1) as f64 / 2.0,
        )
    }

    /// Iterates over all `(row, col)` cells of the rectangle in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let cols = (self.col0, self.col1);
        (self.row0..self.row1).flat_map(move |r| (cols.0..cols.1).map(move |c| (r, c)))
    }

    /// Splits the range `[0, extent)` into `parts` contiguous chunks whose sizes
    /// differ by at most one, returning `(start, len)` pairs.
    ///
    /// This is the 1D building block of the tile grid: the image rows are split
    /// into `grid_rows` chunks and the columns into `grid_cols` chunks.
    pub fn split_extent(extent: usize, parts: usize) -> Vec<(usize, usize)> {
        assert!(parts > 0, "cannot split an extent into zero parts");
        let base = extent / parts;
        let remainder = extent % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < remainder);
            out.push((start, len));
            start += len;
        }
        out
    }

    /// Tessellates `bounds` into a `grid_rows x grid_cols` grid of disjoint
    /// tiles (row-major order) that exactly cover it.
    pub fn grid(bounds: &Rect, grid_rows: usize, grid_cols: usize) -> Vec<Rect> {
        let row_chunks = Self::split_extent(bounds.rows(), grid_rows);
        let col_chunks = Self::split_extent(bounds.cols(), grid_cols);
        let mut tiles = Vec::with_capacity(grid_rows * grid_cols);
        for &(r0, rlen) in &row_chunks {
            for &(c0, clen) in &col_chunks {
                tiles.push(Rect::new(
                    bounds.row0 + r0 as i64,
                    bounds.col0 + c0 as i64,
                    rlen as i64,
                    clen as i64,
                ));
            }
        }
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_shape() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.rows(), 4);
        assert_eq!(r.cols(), 5);
        assert_eq!(r.shape(), (4, 5));
        assert_eq!(r.area(), 20);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert!(!e.contains(0, 0));
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains_rect(&e));
        assert_eq!(e.bounding_union(&r), r);
    }

    #[test]
    fn contains_points_half_open() {
        let r = Rect::new(1, 1, 2, 2);
        assert!(r.contains(1, 1));
        assert!(r.contains(2, 2));
        assert!(!r.contains(3, 1));
        assert!(!r.contains(1, 3));
        assert!(!r.contains(0, 1));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(2, 2, 2, 2));
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 5, 2, 2);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn dilate_and_clamp() {
        let tile = Rect::new(0, 0, 4, 4);
        let halo = tile.dilate(2);
        assert_eq!(halo, Rect::from_corners(-2, 6, -2, 6));
        let bounds = Rect::new(0, 0, 8, 8);
        assert_eq!(halo.clamp_to(&bounds), Rect::new(0, 0, 6, 6));
    }

    #[test]
    fn dilate_negative_can_empty() {
        let r = Rect::new(0, 0, 3, 3);
        assert!(r.dilate(-2).is_empty());
    }

    #[test]
    fn dilate_sides_asymmetric() {
        let r = Rect::new(10, 10, 4, 4);
        let d = r.dilate_sides(1, 2, 3, 4);
        assert_eq!(d, Rect::from_corners(9, 16, 7, 18));
    }

    #[test]
    fn local_global_roundtrip() {
        let frame = Rect::new(10, 20, 8, 8);
        let global = Rect::new(12, 24, 2, 3);
        let local = global.to_local(&frame);
        assert_eq!(local, Rect::new(2, 4, 2, 3));
        assert_eq!(local.to_global(&frame), global);
    }

    #[test]
    fn split_extent_balanced() {
        assert_eq!(Rect::split_extent(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
        assert_eq!(Rect::split_extent(9, 3), vec![(0, 3), (3, 3), (6, 3)]);
        assert_eq!(Rect::split_extent(2, 3), vec![(0, 1), (1, 1), (2, 0)]);
    }

    #[test]
    fn grid_covers_bounds_disjointly() {
        let bounds = Rect::new(0, 0, 100, 90);
        let tiles = Rect::grid(&bounds, 3, 4);
        assert_eq!(tiles.len(), 12);
        let total_area: usize = tiles.iter().map(Rect::area).sum();
        assert_eq!(total_area, bounds.area());
        for (i, a) in tiles.iter().enumerate() {
            assert!(bounds.contains_rect(a));
            for b in tiles.iter().skip(i + 1) {
                assert!(!a.intersects(b), "{a:?} intersects {b:?}");
            }
        }
    }

    #[test]
    fn grid_respects_offset_bounds() {
        let bounds = Rect::new(5, 7, 10, 10);
        let tiles = Rect::grid(&bounds, 2, 2);
        assert_eq!(tiles[0], Rect::new(5, 7, 5, 5));
        assert_eq!(tiles[3], Rect::new(10, 12, 5, 5));
    }

    #[test]
    fn iter_cells_row_major() {
        let r = Rect::new(0, 0, 2, 2);
        let cells: Vec<_> = r.iter_cells().collect();
        assert_eq!(cells, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn center_of_rect() {
        let r = Rect::new(0, 0, 4, 2);
        assert_eq!(r.center(), (2.0, 1.0));
    }
}
