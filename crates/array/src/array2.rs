//! Row-major dense 2D arrays.

use crate::{Rect, Shape2};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major 2D array.
///
/// `Array2` is deliberately small: it provides exactly the operations the
/// reconstruction pipeline needs — indexing, elementwise arithmetic, mapping,
/// and *region* operations (extract / paste / add a [`Rect`] sub-block). Region
/// operations silently clip against the array bounds, because halo-extended
/// tiles routinely hang over the edge of the reconstruction volume.
#[derive(Clone, PartialEq)]
pub struct Array2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Array2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Array2<{}x{}> [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            write!(f, "  ")?;
            for c in 0..max_cols {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if self.cols > max_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Clone + Default> Array2<T> {
    /// Creates an array of the given shape filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Clone> Array2<T> {
    /// Creates an array of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds an array from a row-major `Vec`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Array2::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds an array by evaluating `f(row, col)` at every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Extracts the sub-block covered by `region` (clipped to the array).
    ///
    /// Cells of `region` outside the array are filled with `fill`. The returned
    /// array always has shape `region.shape()`.
    pub fn extract_with_fill(&self, region: Rect, fill: T) -> Array2<T> {
        let mut out = Array2::full(region.rows(), region.cols(), fill);
        let bounds = self.bounds();
        let clipped = region.intersect(&bounds);
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            let src_base = gr as usize * self.cols;
            let dst_base = lr * out.cols;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                out.data[dst_base + lc] = self.data[src_base + gc as usize].clone();
            }
        }
        out
    }

    /// Writes `block` into the cells covered by `region` (clipped to the array).
    ///
    /// `block` must have shape `region.shape()`.
    pub fn paste_region(&mut self, region: Rect, block: &Array2<T>) {
        assert_eq!(
            block.shape(),
            region.shape(),
            "paste_region: block shape {:?} does not match region shape {:?}",
            block.shape(),
            region.shape()
        );
        let bounds = self.bounds();
        let clipped = region.intersect(&bounds);
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            let dst_base = gr as usize * self.cols;
            let src_base = lr * block.cols;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                self.data[dst_base + gc as usize] = block.data[src_base + lc].clone();
            }
        }
    }

    /// Fills every cell of `region` (clipped to the array) with `value`.
    pub fn fill_region(&mut self, region: Rect, value: T) {
        let clipped = region.intersect(&self.bounds());
        for gr in clipped.row0..clipped.row1 {
            let base = gr as usize * self.cols;
            for gc in clipped.col0..clipped.col1 {
                self.data[base + gc as usize] = value.clone();
            }
        }
    }

    /// Overwrites every element with `value` (an allocation-free reset; the
    /// accumulation buffers of Algorithm 1 are cleared this way every round).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Copies `src` into `self` without allocating.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Array2<T>) {
        assert_eq!(
            self.shape(),
            src.shape(),
            "copy_from: shape mismatch {:?} vs {:?}",
            self.shape(),
            src.shape()
        );
        self.data.clone_from_slice(&src.data);
    }

    /// Returns a transposed copy of the array.
    pub fn transposed(&self) -> Array2<T> {
        let mut data = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                data.push(self.data[r * self.cols + c].clone());
            }
        }
        Array2 {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }
}

impl<T> Array2<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` shape.
    pub fn shape(&self) -> Shape2 {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The rectangle `[0, rows) x [0, cols)` covering the whole array.
    pub fn bounds(&self) -> Rect {
        Rect::of_shape(self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array and returns its row-major data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over `(row, col, &value)` in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i / cols, i % cols, v))
    }

    /// Iterates over references to the elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates over mutable references to the elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Applies `f` to every element, producing a new array.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Array2<U> {
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }

    /// Combines `other` into `self` elementwise, in place (the allocation-free
    /// sibling of [`Self::zip_map`]).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_apply<U>(&mut self, other: &Array2<U>, mut f: impl FnMut(&mut T, &U)) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_apply: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            f(a, b);
        }
    }

    /// Combines two equally-shaped arrays elementwise.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_map<U, V>(&self, other: &Array2<U>, mut f: impl FnMut(&T, &U) -> V) -> Array2<V> {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }
}

impl<T: Clone + Default> Array2<T> {
    /// Extracts the sub-block covered by `region`; out-of-bounds cells are
    /// `T::default()`.
    pub fn extract(&self, region: Rect) -> Array2<T> {
        self.extract_with_fill(region, T::default())
    }
}

impl<T> Index<(usize, usize)> for Array2<T> {
    type Output = T;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Array2<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

// --- numeric operations -----------------------------------------------------

impl<T> Array2<T>
where
    T: Copy + AddAssign,
{
    /// Adds `other` elementwise into `self`.
    pub fn add_assign_elementwise(&mut self, other: &Array2<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Adds `block` into the cells covered by `region` (clipped to the array).
    /// `block` must have shape `region.shape()`.
    pub fn add_region(&mut self, region: Rect, block: &Array2<T>) {
        assert_eq!(
            block.shape(),
            region.shape(),
            "add_region: block shape {:?} does not match region shape {:?}",
            block.shape(),
            region.shape()
        );
        let clipped = region.intersect(&self.bounds());
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            let dst_base = gr as usize * self.cols;
            let src_base = lr * block.cols;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                self.data[dst_base + gc as usize] += block.data[src_base + lc];
            }
        }
    }
}

impl<T> Array2<T>
where
    T: Copy + Add<Output = T> + std::iter::Sum<T>,
{
    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }

    /// Sum of the elements inside `region` (clipped to the array).
    pub fn region_sum(&self, region: Rect) -> T {
        let clipped = region.intersect(&self.bounds());
        let mut acc: Vec<T> = Vec::new();
        for gr in clipped.row0..clipped.row1 {
            let base = gr as usize * self.cols;
            for gc in clipped.col0..clipped.col1 {
                acc.push(self.data[base + gc as usize]);
            }
        }
        acc.into_iter().sum()
    }
}

impl<T> Array2<T>
where
    T: Copy + Mul<Output = T>,
{
    /// Multiplies every element by `factor` in place.
    pub fn scale(&mut self, factor: T) {
        for v in &mut self.data {
            *v = *v * factor;
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Array2<T>) -> Array2<T> {
        self.zip_map(other, |a, b| *a * *b)
    }
}

impl<T> Array2<T>
where
    T: Copy + Sub<Output = T>,
{
    /// Elementwise difference `self - other`.
    pub fn sub_elementwise(&self, other: &Array2<T>) -> Array2<T> {
        self.zip_map(other, |a, b| *a - *b)
    }
}

impl<T> Array2<T>
where
    T: Copy + Neg<Output = T>,
{
    /// Elementwise negation.
    pub fn negated(&self) -> Array2<T> {
        self.map(|v| -*v)
    }
}

impl<'a, T> Add<&'a Array2<T>> for &'a Array2<T>
where
    T: Copy + Add<Output = T>,
{
    type Output = Array2<T>;

    fn add(self, rhs: &'a Array2<T>) -> Array2<T> {
        self.zip_map(rhs, |a, b| *a + *b)
    }
}

impl<'a, T> Sub<&'a Array2<T>> for &'a Array2<T>
where
    T: Copy + Sub<Output = T>,
{
    type Output = Array2<T>;

    fn sub(self, rhs: &'a Array2<T>) -> Array2<T> {
        self.zip_map(rhs, |a, b| *a - *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut a = Array2::<f64>::zeros(3, 4);
        assert_eq!(a.shape(), (3, 4));
        assert_eq!(a.len(), 12);
        a[(2, 3)] = 7.0;
        assert_eq!(a[(2, 3)], 7.0);
        assert_eq!(a[(0, 0)], 0.0);
    }

    #[test]
    fn from_fn_row_major() {
        let a = Array2::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(a.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(a[(1, 2)], 12);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Array2::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn extract_inside() {
        let a = Array2::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = a.extract(Rect::new(1, 1, 2, 2));
        assert_eq!(b.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn extract_clips_and_fills() {
        let a = Array2::from_fn(2, 2, |r, c| (r * 2 + c + 1) as f64);
        // Region hangs over the top-left corner.
        let b = a.extract(Rect::new(-1, -1, 2, 2));
        assert_eq!(b.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
        // Fully outside.
        let c = a.extract(Rect::new(10, 10, 2, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn paste_and_add_region_clip() {
        let mut a = Array2::<f64>::zeros(3, 3);
        let block = Array2::full(2, 2, 1.0);
        a.paste_region(Rect::new(2, 2, 2, 2), &block); // only (2,2) in bounds
        assert_eq!(a[(2, 2)], 1.0);
        assert_eq!(a.sum(), 1.0);

        a.add_region(Rect::new(2, 2, 2, 2), &block);
        assert_eq!(a[(2, 2)], 2.0);
    }

    #[test]
    fn add_region_negative_offset() {
        let mut a = Array2::<f64>::zeros(3, 3);
        let block = Array2::full(2, 2, 1.0);
        a.add_region(Rect::new(-1, -1, 2, 2), &block);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a.sum(), 1.0);
    }

    #[test]
    fn fill_and_region_sum() {
        let mut a = Array2::<f64>::zeros(8, 8);
        a.fill_region(Rect::new(2, 2, 3, 3), 2.0);
        assert_eq!(a.region_sum(Rect::new(0, 0, 8, 8)), 18.0);
        assert_eq!(a.region_sum(Rect::new(2, 2, 1, 1)), 2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Array2::from_fn(3, 5, |r, c| (r * 5 + c) as i64);
        let t = a.transposed();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], a[(2, 4)]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn zip_map_and_arithmetic() {
        let a = Array2::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Array2::full(2, 2, 2.0);
        let sum = &a + &b;
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let prod = a.hadamard(&b);
        assert_eq!(prod.as_slice(), &[0.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn scale_and_negate() {
        let mut a = Array2::full(2, 2, 3.0);
        a.scale(2.0);
        assert_eq!(a.sum(), 24.0);
        let n = a.negated();
        assert_eq!(n.sum(), -24.0);
    }

    #[test]
    fn rows_and_iterators() {
        let a = Array2::from_fn(3, 3, |r, c| r * 3 + c);
        assert_eq!(a.row(1), &[3, 4, 5]);
        let total: usize = a.iter().sum();
        assert_eq!(total, 36);
        let indexed: Vec<_> = a.indexed_iter().filter(|&(r, c, _)| r == c).collect();
        assert_eq!(indexed.len(), 3);
    }

    #[test]
    fn fill_and_copy_from_reuse_storage() {
        let mut a = Array2::full(2, 3, 1.0f64);
        a.fill(4.0);
        assert!(a.iter().all(|&v| v == 4.0));
        let b = Array2::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        a.copy_from(&b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "copy_from: shape mismatch")]
    fn copy_from_shape_mismatch_panics() {
        let mut a = Array2::<f64>::zeros(2, 2);
        a.copy_from(&Array2::zeros(3, 3));
    }

    #[test]
    fn zip_apply_matches_zip_map() {
        let mut a = Array2::from_fn(3, 3, |r, c| (r + c) as f64);
        let b = Array2::full(3, 3, 2.0);
        let expected = a.zip_map(&b, |x, y| *x * *y);
        a.zip_apply(&b, |x, y| *x *= *y);
        assert_eq!(a, expected);
    }

    #[test]
    fn add_assign_elementwise_accumulates() {
        let mut a = Array2::full(2, 2, 1.0f64);
        let b = Array2::full(2, 2, 0.5f64);
        a.add_assign_elementwise(&b);
        a.add_assign_elementwise(&b);
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }
}
