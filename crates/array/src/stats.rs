//! Reductions and image-comparison metrics.
//!
//! These are used throughout the workspace: the solvers report the
//! reconstruction cost, the integration tests compare stitched reconstructions
//! against serial references, and the Fig. 8 harness quantifies seam artifacts
//! with the border-energy metric built on these primitives.

use crate::Array2;

/// Sum of all elements.
pub fn sum(values: &[f64]) -> f64 {
    values.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        sum(values) / values.len() as f64
    }
}

/// Population variance; `0.0` for an empty slice.
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Maximum value; `f64::NEG_INFINITY` for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum value; `f64::INFINITY` for an empty slice.
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Root-mean-square error between two equally-shaped images.
///
/// # Panics
/// Panics if the shapes differ.
pub fn rmse(a: &Array2<f64>, b: &Array2<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "rmse: shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let se: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (se / a.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in decibels, using the dynamic range of `reference`.
///
/// Returns `f64::INFINITY` when the two images are identical.
pub fn psnr(reference: &Array2<f64>, test: &Array2<f64>) -> f64 {
    let err = rmse(reference, test);
    if err == 0.0 {
        return f64::INFINITY;
    }
    let peak = max(reference.as_slice()) - min(reference.as_slice());
    if peak <= 0.0 {
        return f64::NEG_INFINITY;
    }
    20.0 * (peak / err).log10()
}

/// Normalised cross-correlation between two equally-shaped images, in `[-1, 1]`.
///
/// Returns `0.0` when either image has zero variance.
pub fn normalized_cross_correlation(a: &Array2<f64>, b: &Array2<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "ncc: shape mismatch");
    let ma = mean(a.as_slice());
    let mb = mean(b.as_slice());
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        let xa = x - ma;
        let yb = y - mb;
        num += xa * yb;
        da += xa * xa;
        db += yb * yb;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da.sqrt() * db.sqrt())
    }
}

/// Discrete gradient-magnitude image (forward differences, clamped at the border).
///
/// Used by the seam-artifact metric: copy-paste seams show up as rows/columns of
/// anomalously high gradient magnitude.
pub fn gradient_magnitude(img: &Array2<f64>) -> Array2<f64> {
    let (rows, cols) = img.shape();
    Array2::from_fn(rows, cols, |r, c| {
        let here = img[(r, c)];
        let down = if r + 1 < rows { img[(r + 1, c)] } else { here };
        let right = if c + 1 < cols { img[(r, c + 1)] } else { here };
        let dr = down - here;
        let dc = right - here;
        (dr * dr + dc * dc).sqrt()
    })
}

/// Relative L2 error `||a - b|| / ||b||`; returns the absolute L2 norm of `a`
/// when `b` is all zeros.
pub fn relative_l2_error(a: &Array2<f64>, b: &Array2<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "relative_l2_error: shape mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reductions() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sum(&v), 10.0);
        assert_eq!(mean(&v), 2.5);
        assert!((variance(&v) - 1.25).abs() < 1e-12);
        assert!((std_dev(&v) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(max(&v), 4.0);
        assert_eq!(min(&v), 1.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(min(&[]), f64::INFINITY);
    }

    #[test]
    fn rmse_identical_is_zero() {
        let a = Array2::from_fn(4, 4, |r, c| (r + c) as f64);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn rmse_known_value() {
        let a = Array2::full(2, 2, 1.0);
        let b = Array2::full(2, 2, 3.0);
        assert!((rmse(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Array2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let slightly = a.map(|v| v + 0.1);
        let very = a.map(|v| v + 5.0);
        assert!(psnr(&a, &slightly) > psnr(&a, &very));
    }

    #[test]
    fn ncc_perfect_and_anticorrelated() {
        let a = Array2::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = a.map(|v| 3.0 * v + 7.0);
        assert!((normalized_cross_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let neg = a.map(|v| -v);
        assert!((normalized_cross_correlation(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ncc_zero_variance_is_zero() {
        let a = Array2::full(3, 3, 2.0);
        let b = Array2::from_fn(3, 3, |r, c| (r + c) as f64);
        assert_eq!(normalized_cross_correlation(&a, &b), 0.0);
    }

    #[test]
    fn gradient_magnitude_flat_is_zero() {
        let flat = Array2::full(5, 5, 3.0);
        let g = gradient_magnitude(&flat);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_magnitude_detects_step() {
        // A vertical step edge at column 2.
        let img = Array2::from_fn(4, 4, |_, c| if c < 2 { 0.0 } else { 1.0 });
        let g = gradient_magnitude(&img);
        assert!(g[(1, 1)] > 0.9);
        assert_eq!(g[(1, 0)], 0.0);
        assert_eq!(g[(1, 3)], 0.0);
    }

    #[test]
    fn relative_l2_error_scales() {
        let a = Array2::full(2, 2, 1.1);
        let b = Array2::full(2, 2, 1.0);
        assert!((relative_l2_error(&a, &b) - 0.1).abs() < 1e-9);
        let zeros = Array2::full(2, 2, 0.0);
        assert!((relative_l2_error(&a, &zeros) - 2.2).abs() < 1e-9);
    }
}
