//! Dense array containers and rectangle algebra for the ptychopath workspace.
//!
//! Ptychographic reconstruction manipulates three kinds of dense data:
//!
//! * 2D complex fields (probes, exit waves, diffraction patterns, image slices),
//! * 3D stacks of 2D slices (the reconstruction volume `V` and its gradient),
//! * axis-aligned rectangular regions of those arrays (tiles, halos, and the
//!   overlap regions in which the Gradient Decomposition method accumulates
//!   image gradients).
//!
//! This crate provides exactly those primitives, with no external dependencies,
//! so that every other crate in the workspace (FFT, physics simulation, cluster
//! substrate and the reconstruction core) shares one representation.
//!
//! # Layout
//!
//! * [`Array2`] — a row-major dense 2D array generic over its element type.
//! * [`Array3`] — a dense stack of equally-shaped 2D slices (`depth × rows × cols`).
//! * [`Rect`] — half-open axis-aligned rectangles with intersection, union,
//!   containment, translation and clamping; the vocabulary used by the tiling
//!   and halo logic in `ptycho-core`.
//! * [`stats`] — reductions and image-comparison metrics (RMSE, PSNR,
//!   normalised cross-correlation) used by tests and the experiment harnesses.
//!
//! # Example
//!
//! ```
//! use ptycho_array::{Array2, Rect};
//!
//! // A 64x64 image with a bright 8x8 block.
//! let mut img = Array2::<f64>::zeros(64, 64);
//! let block = Rect::new(8, 8, 8, 8);
//! img.fill_region(block, 1.0);
//! assert_eq!(img.region_sum(block), 64.0);
//!
//! // Extract it, scale it, and paste it back shifted by (4, 4).
//! let patch = img.extract(block);
//! let shifted = block.translate(4, 4);
//! img.add_region(shifted, &patch);
//! assert!(img[(12, 12)] > 1.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod array2;
mod array3;
mod rect;
pub mod stats;

pub use array2::Array2;
pub use array3::Array3;
pub use rect::Rect;

/// A `(row, col)` index pair into a 2D array.
pub type Index2 = (usize, usize);

/// A `(slice, row, col)` index triple into a 3D array.
pub type Index3 = (usize, usize, usize);

/// Shape of a 2D array as `(rows, cols)`.
pub type Shape2 = (usize, usize);

/// Shape of a 3D array as `(depth, rows, cols)`.
pub type Shape3 = (usize, usize, usize);
