//! Property-based tests for the array and rectangle primitives.

use proptest::prelude::*;
use ptycho_array::{Array2, Rect};

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-16i64..32, -16i64..32, 0i64..24, 0i64..24).prop_map(|(r0, c0, h, w)| Rect::new(r0, c0, h, w))
}

proptest! {
    #[test]
    fn intersection_is_commutative(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersection_is_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        let i = a.intersect(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn intersection_area_never_exceeds_either(a in rect_strategy(), b in rect_strategy()) {
        let i = a.intersect(&b);
        prop_assert!(i.area() <= a.area());
        prop_assert!(i.area() <= b.area());
    }

    #[test]
    fn bounding_union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.bounding_union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn translate_preserves_area(a in rect_strategy(), dr in -10i64..10, dc in -10i64..10) {
        prop_assert_eq!(a.translate(dr, dc).area(), a.area());
    }

    #[test]
    fn local_global_roundtrip(a in rect_strategy(), frame in rect_strategy()) {
        prop_assert_eq!(a.to_local(&frame).to_global(&frame), a);
    }

    #[test]
    fn dilate_then_intersect_recovers_rect(a in rect_strategy(), m in 0i64..8) {
        // Dilating and clamping back to the original never loses cells.
        if !a.is_empty() {
            let d = a.dilate(m);
            prop_assert_eq!(d.intersect(&a), a);
        }
    }

    #[test]
    fn split_extent_partitions(extent in 0usize..200, parts in 1usize..16) {
        let chunks = Rect::split_extent(extent, parts);
        prop_assert_eq!(chunks.len(), parts);
        let total: usize = chunks.iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(total, extent);
        // Chunks are contiguous and ordered.
        let mut cursor = 0usize;
        for &(start, len) in &chunks {
            prop_assert_eq!(start, cursor);
            cursor += len;
        }
        // Sizes differ by at most one.
        let max = chunks.iter().map(|&(_, l)| l).max().unwrap();
        let min = chunks.iter().map(|&(_, l)| l).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn grid_tiles_partition_bounds(rows in 1usize..64, cols in 1usize..64,
                                   gr in 1usize..5, gc in 1usize..5) {
        let bounds = Rect::of_shape(rows, cols);
        let tiles = Rect::grid(&bounds, gr, gc);
        let area: usize = tiles.iter().map(Rect::area).sum();
        prop_assert_eq!(area, bounds.area());
        for t in &tiles {
            prop_assert!(bounds.contains_rect(t));
        }
    }

    #[test]
    fn extract_paste_roundtrip(rows in 1usize..16, cols in 1usize..16,
                               r0 in 0usize..8, c0 in 0usize..8,
                               h in 1usize..8, w in 1usize..8) {
        let img = Array2::from_fn(rows, cols, |r, c| (r * 31 + c) as f64);
        let region = Rect::new(r0 as i64, c0 as i64, h as i64, w as i64);
        let patch = img.extract(region);
        prop_assert_eq!(patch.shape(), region.shape());

        // Pasting the extracted patch back must leave the image unchanged inside
        // the in-bounds part of the region.
        let mut copy = img.clone();
        copy.paste_region(region, &patch);
        prop_assert_eq!(copy, img);
    }

    #[test]
    fn add_region_adds_exactly_once(rows in 2usize..12, cols in 2usize..12,
                                    h in 1usize..6, w in 1usize..6) {
        let mut img = Array2::<f64>::zeros(rows, cols);
        let region = Rect::new(0, 0, h as i64, w as i64);
        let block = Array2::full(h, w, 1.0);
        img.add_region(region, &block);
        let expected = region.intersect(&img.bounds()).area() as f64;
        prop_assert!((img.sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..12, cols in 1usize..12) {
        let img = Array2::from_fn(rows, cols, |r, c| (r * 17 + c * 3) as i64);
        prop_assert_eq!(img.transposed().transposed(), img);
    }
}
