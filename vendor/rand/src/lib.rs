//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses* — `Rng::gen`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng` — backed by a SplitMix64
//! generator. The surface is call-compatible with `rand 0.8`, so replacing
//! this stub with the real crate is a one-line change in the workspace
//! manifest and requires no source edits.
//!
//! The generator is deterministic for a given seed, which is exactly what the
//! simulation code (`ptycho-sim`) relies on for reproducible synthetic
//! specimens and noise realisations. It is **not** cryptographically secure,
//! and the stream differs from the real `StdRng` (ChaCha12), so numerical
//! outputs differ from a registry build — but every consumer in this
//! workspace only requires a deterministic high-quality uniform stream.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! let mut rng2 = StdRng::seed_from_u64(7);
//! assert_eq!(rng2.gen::<f64>(), x);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (mirrors the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly (`f64`/`f32` in `[0, 1)`, integers over
    /// their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types supporting [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl UniformRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                let span = (range.end as i128) - (range.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                (range.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_uniform_int!(i32, i64, u32, u64, usize);

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    ///
    /// Internally a SplitMix64: a small, fast, well-distributed 64-bit
    /// generator (Steele et al., "Fast splittable pseudorandom number
    /// generators", OOPSLA 2014). The output stream differs from the real
    /// `StdRng`; only determinism-per-seed is guaranteed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }
}
