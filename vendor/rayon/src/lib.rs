//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses*. Unlike the first
//! iteration of this stub, the slice combinators are now **genuinely
//! parallel**: [`slice::ParallelSliceMut::par_chunks_mut`] and
//! [`slice::ParallelSlice::par_chunks`] fan their chunks out over a
//! fork-join worker pool sized to [`current_num_threads`] (scoped threads,
//! one contiguous section per worker), and [`join`] runs its two closures
//! concurrently. Work below a small threshold stays on the calling thread,
//! so tiny inputs pay no spawn overhead.
//!
//! The generic iterator adapters (`par_iter`, `into_par_iter`) remain
//! sequential std iterators: they accept arbitrary `IntoIterator` sources,
//! which a safe, dependency-free stub cannot fan out without the real
//! crate's machinery. Every `par_*` call site compiles unmodified against
//! real `rayon`, so restoring registry access upgrades those too with a
//! one-line manifest change.
//!
//! Chunk processing is order-independent (each chunk is touched exactly
//! once, by one worker), so results are deterministic and identical to the
//! sequential stub — the property the `fft2_parallel_equals_serial` proptest
//! in `ptycho-fft` pins.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let mut rows = vec![1.0f64; 12];
//! rows.par_chunks_mut(4).for_each(|row| {
//!     for v in row {
//!         *v *= 2.0;
//!     }
//! });
//! assert!(rows.iter().all(|&v| v == 2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Inputs smaller than this many elements are processed on the calling
/// thread: spawning scoped workers costs tens of microseconds, which dwarfs
/// the work in a small FFT row pass.
const PARALLEL_THRESHOLD_ELEMS: usize = 2048;

/// Number of worker threads the chunk combinators fan out to (the machine's
/// available parallelism; 1 means every combinator runs sequentially).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, concurrently when more than one hardware thread is
/// available (mirrors `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("rayon::join closure panicked"))
    })
}

/// Sequential analogue of `rayon::iter`: re-uses the standard iterators.
pub mod iter {
    /// Conversion into a "parallel" iterator (sequential here).
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for collections viewed by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a shared reference).
        type Item: 'a;
        /// Iterates over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for collections viewed by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (an exclusive reference).
        type Item: 'a;
        /// Iterates over `&mut self`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        type Item = <&'a mut C as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Parallel chunked access to slices, backed by a scoped fork-join pool.
pub mod slice {
    use super::{current_num_threads, PARALLEL_THRESHOLD_ELEMS};

    /// How many workers to use for `len` elements split into `chunks` chunks.
    fn workers_for(len: usize, chunks: usize) -> usize {
        if len < PARALLEL_THRESHOLD_ELEMS {
            return 1;
        }
        current_num_threads().min(chunks).max(1)
    }

    /// A pending parallel iteration over immutable chunks (the stub analogue
    /// of `rayon::slice::Chunks`).
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Number of chunks the iteration will visit.
        fn chunk_count(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        /// Applies `f` to every chunk, fanning out over the worker pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }

        /// Pairs every chunk with its global index (mirrors
        /// `ParallelIterator::enumerate`).
        pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
            ParChunksEnumerate { inner: self }
        }

        /// Sequential fallback for combinators the stub does not fan out.
        pub fn into_seq(self) -> std::slice::Chunks<'a, T> {
            self.slice.chunks(self.chunk_size)
        }
    }

    /// Enumerated variant of [`ParChunks`].
    pub struct ParChunksEnumerate<'a, T> {
        inner: ParChunks<'a, T>,
    }

    impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
        /// Applies `f` to every `(chunk_index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a [T])) + Sync,
        {
            let chunks = self.inner.chunk_count();
            let workers = workers_for(self.inner.slice.len(), chunks);
            let size = self.inner.chunk_size;
            if workers <= 1 {
                for (i, chunk) in self.inner.slice.chunks(size).enumerate() {
                    f((i, chunk));
                }
                return;
            }
            let mut sections = Vec::with_capacity(workers);
            let mut rest = self.inner.slice;
            for w in 0..workers {
                let lo = w * chunks / workers;
                let hi = (w + 1) * chunks / workers;
                let elems = ((hi - lo) * size).min(rest.len());
                let (head, tail) = rest.split_at(elems);
                sections.push((lo, head));
                rest = tail;
            }
            let f = &f;
            std::thread::scope(|scope| {
                // Spawn workers for all but the first section; the calling
                // thread processes section 0 itself instead of idling.
                let mut sections = sections.into_iter();
                let head = sections.next();
                for (base, section) in sections {
                    scope.spawn(move || {
                        for (offset, chunk) in section.chunks(size).enumerate() {
                            f((base + offset, chunk));
                        }
                    });
                }
                if let Some((base, section)) = head {
                    for (offset, chunk) in section.chunks(size).enumerate() {
                        f((base + offset, chunk));
                    }
                }
            });
        }
    }

    /// A pending parallel iteration over mutable chunks (the stub analogue
    /// of `rayon::slice::ChunksMut`).
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        fn chunk_count(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        /// Applies `f` to every chunk, fanning out over the worker pool.
        /// Chunks are disjoint, so workers never alias.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }

        /// Pairs every chunk with its global index.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate { inner: self }
        }

        /// Sequential fallback for combinators the stub does not fan out.
        pub fn into_seq(self) -> std::slice::ChunksMut<'a, T> {
            self.slice.chunks_mut(self.chunk_size)
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct ParChunksMutEnumerate<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
        /// Applies `f` to every `(chunk_index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            let chunks = self.inner.chunk_count();
            let workers = workers_for(self.inner.slice.len(), chunks);
            let size = self.inner.chunk_size;
            if workers <= 1 {
                for (i, chunk) in self.inner.slice.chunks_mut(size).enumerate() {
                    f((i, chunk));
                }
                return;
            }
            let mut sections = Vec::with_capacity(workers);
            let mut rest = self.inner.slice;
            for w in 0..workers {
                let lo = w * chunks / workers;
                let hi = (w + 1) * chunks / workers;
                let elems = ((hi - lo) * size).min(rest.len());
                let (head, tail) = rest.split_at_mut(elems);
                sections.push((lo, head));
                rest = tail;
            }
            let f = &f;
            std::thread::scope(|scope| {
                // Spawn workers for all but the first section; the calling
                // thread processes section 0 itself instead of idling.
                let mut sections = sections.into_iter();
                let head = sections.next();
                for (base, section) in sections {
                    scope.spawn(move || {
                        for (offset, chunk) in section.chunks_mut(size).enumerate() {
                            f((base + offset, chunk));
                        }
                    });
                }
                if let Some((base, section)) = head {
                    for (offset, chunk) in section.chunks_mut(size).enumerate() {
                        f((base + offset, chunk));
                    }
                }
            });
        }
    }

    /// Chunked access to shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel analogue of `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Chunked access to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel analogue of `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

/// Mirrors `rayon::prelude` for glob imports.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_chunks_mut_visits_every_chunk() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_above_threshold() {
        // Large enough to actually fan out on a multi-core machine; indices
        // and contents must come out exactly as in the sequential case.
        let n = 100_000usize;
        let chunk = 257;
        let mut data = vec![0usize; n];
        data.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, part)| {
                for (j, v) in part.iter_mut().enumerate() {
                    *v = i * chunk + j;
                }
            });
        for (expected, &got) in data.iter().enumerate() {
            assert_eq!(expected, got);
        }
    }

    #[test]
    fn par_chunks_reads_every_chunk_once() {
        let data: Vec<u64> = (0..50_000).collect();
        let seen = Mutex::new(HashSet::new());
        let total = Mutex::new(0u64);
        data.par_chunks(1000).enumerate().for_each(|(i, chunk)| {
            assert!(seen.lock().unwrap().insert(i), "chunk {i} visited twice");
            *total.lock().unwrap() += chunk.iter().sum::<u64>();
        });
        assert_eq!(seen.lock().unwrap().len(), 50);
        assert_eq!(*total.lock().unwrap(), (0..50_000u64).sum::<u64>());
    }

    #[test]
    fn parallel_for_each_uses_multiple_threads_when_available() {
        // On a single-core machine this trivially holds with one thread.
        let data = vec![1u8; 1 << 20];
        let threads = Mutex::new(HashSet::new());
        data.par_chunks(4096).for_each(|_| {
            threads.lock().unwrap().insert(std::thread::current().id());
        });
        let used = threads.lock().unwrap().len();
        let cap = super::current_num_threads();
        assert!(used >= 1 && used <= cap.max(1));
        if cap > 1 {
            assert!(used > 1, "expected fan-out on a {cap}-thread machine");
        }
    }

    #[test]
    fn par_iter_matches_iter() {
        let data = vec![1, 2, 3, 4];
        let a: i32 = data.par_iter().sum();
        assert_eq!(a, 10);
        let b: Vec<i32> = data.into_par_iter().map(|v| v * 2).collect();
        assert_eq!(b, [2, 4, 6, 8]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
