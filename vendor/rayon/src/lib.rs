//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses*, executed
//! **sequentially** on the calling thread. The trait and method names mirror
//! `rayon 1.x`, so replacing this stub with the real crate is a one-line
//! change in the workspace manifest and requires no source edits — every
//! `par_*` call site then becomes genuinely parallel.
//!
//! Because the stand-in is sequential, code written against it is
//! automatically deterministic; the real crate's work-stealing scheduler
//! preserves the same element ordering for the combinators used here
//! (`for_each` over `par_chunks_mut`, `map`/`collect` over `par_iter`).
//!
//! ```
//! use rayon::prelude::*;
//!
//! let mut rows = vec![1.0f64; 12];
//! rows.par_chunks_mut(4).for_each(|row| {
//!     for v in row {
//!         *v *= 2.0;
//!     }
//! });
//! assert!(rows.iter().all(|&v| v == 2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Sequential analogue of `rayon::iter`: re-uses the standard iterators.
pub mod iter {
    /// Conversion into a "parallel" iterator (sequential here).
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for collections viewed by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a shared reference).
        type Item: 'a;
        /// Iterates over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for collections viewed by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (an exclusive reference).
        type Item: 'a;
        /// Iterates over `&mut self`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        type Item = <&'a mut C as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential analogue of `rayon::slice`.
pub mod slice {
    /// Chunked access to shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Chunked access to mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Mirrors `rayon::prelude` for glob imports.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Runs two closures (sequentially here; in parallel with the real crate).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads (always 1: this stand-in is sequential).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_matches_iter() {
        let data = vec![1, 2, 3, 4];
        let a: i32 = data.par_iter().sum();
        assert_eq!(a, 10);
        let b: Vec<i32> = data.into_par_iter().map(|v| v * 2).collect();
        assert_eq!(b, [2, 4, 6, 8]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
