//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses*. Unlike the first
//! iteration of this stub, the slice combinators are now **genuinely
//! parallel**: [`slice::ParallelSliceMut::par_chunks_mut`] and
//! [`slice::ParallelSlice::par_chunks`] fan their chunks out over a
//! fork-join worker pool sized to [`current_num_threads`] (scoped threads,
//! one contiguous section per worker), and [`join`] runs its two closures
//! concurrently. Work below a small threshold stays on the calling thread,
//! so tiny inputs pay no spawn overhead.
//!
//! The generic iterator adapters (`par_iter`, `par_iter_mut`,
//! `into_par_iter`) are parallel too, for slices and `Vec`: the [`iter`]
//! module implements indexed splitting (recursive `split_at` halving fanned
//! out over [`join`], the real crate's plumbing shape) with `map` /
//! `enumerate` / `for_each` / `collect` combinators whose results are
//! reassembled in index order — bit-identical to the sequential path. The
//! exception is `sum`, which combines partial sums in a tree whose shape
//! depends on the worker count: exact for integers, but floating-point
//! sums can differ in the last bits from the sequential fold (and between
//! machines) — same as real `rayon`.
//! Arbitrary `IntoIterator` sources are not supported (a dependency-free
//! stub cannot fan them out), but every `par_*` call site that compiles
//! here compiles unmodified against real `rayon`, so restoring registry
//! access upgrades the whole surface with a one-line manifest change.
//!
//! Chunk processing is order-independent (each chunk is touched exactly
//! once, by one worker), so results are deterministic and identical to the
//! sequential stub — the property the `fft2_parallel_equals_serial` proptest
//! in `ptycho-fft` pins.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let mut rows = vec![1.0f64; 12];
//! rows.par_chunks_mut(4).for_each(|row| {
//!     for v in row {
//!         *v *= 2.0;
//!     }
//! });
//! assert!(rows.iter().all(|&v| v == 2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Inputs smaller than this many elements are processed on the calling
/// thread: spawning scoped workers costs tens of microseconds, which dwarfs
/// the work in a small FFT row pass.
const PARALLEL_THRESHOLD_ELEMS: usize = 2048;

/// Number of worker threads the chunk combinators fan out to (the machine's
/// available parallelism; 1 means every combinator runs sequentially).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, concurrently when more than one hardware thread is
/// available (mirrors `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("rayon::join closure panicked"))
    })
}

/// Indexed parallel iterators for slices and `Vec`, mirroring the subset of
/// `rayon::iter` this workspace can use.
///
/// Unlike the first iteration of this stub (plain std iterators), the
/// adapters here are **genuinely parallel**: every source knows its length
/// and can [`ParallelIterator::split_at`] itself, so the provided
/// combinators recursively halve the work and fan the halves out over
/// [`join`](crate::join) — the same indexed-splitting shape as the real
/// crate's plumbing. Results are reassembled in index order, so `map` +
/// `collect`, `sum` and `for_each` produce exactly the sequential answer.
///
/// The conversion traits are implemented for slices and `Vec` only (the
/// real crate's blanket `IntoIterator` sources need unindexed plumbing a
/// dependency-free stub cannot provide); every call site that compiles here
/// compiles unmodified against real `rayon`.
pub mod iter {
    use super::{current_num_threads, PARALLEL_THRESHOLD_ELEMS};

    /// An iterator whose work can be split at an index and distributed over
    /// the fork-join pool.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;
        /// The sequential fallback iterator.
        type Seq: Iterator<Item = Self::Item>;

        /// Number of elements remaining.
        fn len(&self) -> usize;

        /// True when no elements remain.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Splits into the first `index` elements and the rest.
        fn split_at(self, index: usize) -> (Self, Self);

        /// Degrades into a sequential iterator (leaf execution).
        fn into_seq(self) -> Self::Seq;

        /// Maps every element through `map` (applied on the worker that owns
        /// the element's section).
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send + Clone>(
            self,
            map: F,
        ) -> Map<Self, F> {
            Map { source: self, map }
        }

        /// Pairs every element with its global index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate {
                source: self,
                base: 0,
            }
        }

        /// Applies `f` to every element, splitting the index space over the
        /// worker pool.
        fn for_each<F: Fn(Self::Item) + Sync + Send + Clone>(self, f: F) {
            let sections = workers_for(self.len());
            drive(self, sections, &|seq| seq.for_each(f.clone()));
        }

        /// Sums the elements. Every element is visited exactly once and
        /// partial sums combine in index order, but the combination *tree*
        /// depends on the worker count: integer sums are exact everywhere,
        /// while floating-point sums may differ in the last bits from the
        /// sequential fold and across machines (float addition is not
        /// associative — the same caveat as real `rayon`). Don't feed a
        /// float `par_iter().sum()` into anything pinned bit-for-bit.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
        {
            let sections = workers_for(self.len());
            reduce(self, sections, &|seq| seq.sum::<S>(), &|a, b| {
                [a, b].into_iter().sum()
            })
        }

        /// Collects into a collection; parallel sections are concatenated in
        /// index order, so the result equals the sequential collect.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par_iter(self)
        }
    }

    /// Collections constructible from a parallel iterator (mirrors
    /// `rayon::iter::FromParallelIterator`; implemented for `Vec`).
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Builds the collection, preserving index order.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            let sections = workers_for(iter.len());
            reduce(
                iter,
                sections,
                &|seq| seq.collect::<Vec<T>>(),
                &|mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
        }
    }

    /// How many leaf sections to aim for. Small inputs stay sequential so
    /// the spawn overhead never dwarfs the work.
    fn workers_for(len: usize) -> usize {
        if len < PARALLEL_THRESHOLD_ELEMS {
            1
        } else {
            current_num_threads().max(1)
        }
    }

    /// Recursively halves `iter` into ~`sections` leaves, running each leaf
    /// sequentially; the two halves of every split run via [`crate::join`].
    pub(crate) fn drive<I, F>(iter: I, sections: usize, leaf: &F)
    where
        I: ParallelIterator,
        F: Fn(I::Seq) + Sync,
    {
        if sections <= 1 || iter.len() <= 1 {
            leaf(iter.into_seq());
            return;
        }
        let mid = iter.len() / 2;
        let (left, right) = iter.split_at(mid);
        let (left_sections, right_sections) = (sections / 2, sections - sections / 2);
        crate::join(
            || drive(left, left_sections, leaf),
            || drive(right, right_sections, leaf),
        );
    }

    /// Like [`drive`], but every leaf produces a value and adjacent results
    /// combine in index order.
    pub(crate) fn reduce<I, R, F, C>(iter: I, sections: usize, leaf: &F, combine: &C) -> R
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Seq) -> R + Sync,
        C: Fn(R, R) -> R + Sync,
    {
        if sections <= 1 || iter.len() <= 1 {
            return leaf(iter.into_seq());
        }
        let mid = iter.len() / 2;
        let (left, right) = iter.split_at(mid);
        let (left_sections, right_sections) = (sections / 2, sections - sections / 2);
        let (a, b) = crate::join(
            || reduce(left, left_sections, leaf, combine),
            || reduce(right, right_sections, leaf, combine),
        );
        combine(a, b)
    }

    /// Parallel iterator over `&[T]`.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        type Seq = std::slice::Iter<'a, T>;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (a, b) = self.slice.split_at(index);
            (SliceIter { slice: a }, SliceIter { slice: b })
        }

        fn into_seq(self) -> Self::Seq {
            self.slice.iter()
        }
    }

    /// Parallel iterator over `&mut [T]`.
    pub struct SliceIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
        type Item = &'a mut T;
        type Seq = std::slice::IterMut<'a, T>;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (a, b) = self.slice.split_at_mut(index);
            (SliceIterMut { slice: a }, SliceIterMut { slice: b })
        }

        fn into_seq(self) -> Self::Seq {
            self.slice.iter_mut()
        }
    }

    /// Parallel iterator consuming a `Vec<T>`.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        type Seq = std::vec::IntoIter<T>;

        fn len(&self) -> usize {
            self.items.len()
        }

        fn split_at(mut self, index: usize) -> (Self, Self) {
            let tail = self.items.split_off(index);
            (self, VecIter { items: tail })
        }

        fn into_seq(self) -> Self::Seq {
            self.items.into_iter()
        }
    }

    /// The mapping adapter produced by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        source: I,
        map: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send + Clone,
    {
        type Item = R;
        type Seq = std::iter::Map<I::Seq, F>;

        fn len(&self) -> usize {
            self.source.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (a, b) = self.source.split_at(index);
            (
                Map {
                    source: a,
                    map: self.map.clone(),
                },
                Map {
                    source: b,
                    map: self.map,
                },
            )
        }

        fn into_seq(self) -> Self::Seq {
            self.source.into_seq().map(self.map)
        }
    }

    /// The enumerating adapter produced by [`ParallelIterator::enumerate`].
    pub struct Enumerate<I> {
        source: I,
        base: usize,
    }

    /// Sequential tail of an [`Enumerate`] leaf: indices continue from the
    /// section's global base.
    pub struct EnumerateSeq<S> {
        inner: S,
        next: usize,
    }

    impl<S: Iterator> Iterator for EnumerateSeq<S> {
        type Item = (usize, S::Item);

        fn next(&mut self) -> Option<Self::Item> {
            let item = self.inner.next()?;
            let index = self.next;
            self.next += 1;
            Some((index, item))
        }
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        type Seq = EnumerateSeq<I::Seq>;

        fn len(&self) -> usize {
            self.source.len()
        }

        fn split_at(self, index: usize) -> (Self, Self) {
            let (a, b) = self.source.split_at(index);
            (
                Enumerate {
                    source: a,
                    base: self.base,
                },
                Enumerate {
                    source: b,
                    base: self.base + index,
                },
            )
        }

        fn into_seq(self) -> Self::Seq {
            EnumerateSeq {
                inner: self.source.into_seq(),
                next: self.base,
            }
        }
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The parallel iterator type produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The element type.
        type Item: Send;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = VecIter<T>;
        type Item = T;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Iter = SliceIter<'a, T>;
        type Item = &'a T;
        fn into_par_iter(self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
        type Iter = SliceIterMut<'a, T>;
        type Item = &'a mut T;
        fn into_par_iter(self) -> SliceIterMut<'a, T> {
            SliceIterMut { slice: self }
        }
    }

    /// `par_iter()` for collections viewed by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The parallel iterator type produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The element type (a shared reference).
        type Item: Send + 'a;
        /// Iterates over `&self` in parallel.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = SliceIter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = SliceIter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// `par_iter_mut()` for collections viewed by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The parallel iterator type produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The element type (an exclusive reference).
        type Item: Send + 'a;
        /// Iterates over `&mut self` in parallel.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = SliceIterMut<'a, T>;
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            SliceIterMut { slice: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = SliceIterMut<'a, T>;
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            SliceIterMut { slice: self }
        }
    }
}

/// Parallel chunked access to slices, backed by a scoped fork-join pool.
pub mod slice {
    use super::{current_num_threads, PARALLEL_THRESHOLD_ELEMS};

    /// How many workers to use for `len` elements split into `chunks` chunks.
    fn workers_for(len: usize, chunks: usize) -> usize {
        if len < PARALLEL_THRESHOLD_ELEMS {
            return 1;
        }
        current_num_threads().min(chunks).max(1)
    }

    /// A pending parallel iteration over immutable chunks (the stub analogue
    /// of `rayon::slice::Chunks`).
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Number of chunks the iteration will visit.
        fn chunk_count(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        /// Applies `f` to every chunk, fanning out over the worker pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }

        /// Pairs every chunk with its global index (mirrors
        /// `ParallelIterator::enumerate`).
        pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
            ParChunksEnumerate { inner: self }
        }

        /// Sequential fallback for combinators the stub does not fan out.
        pub fn into_seq(self) -> std::slice::Chunks<'a, T> {
            self.slice.chunks(self.chunk_size)
        }
    }

    /// Enumerated variant of [`ParChunks`].
    pub struct ParChunksEnumerate<'a, T> {
        inner: ParChunks<'a, T>,
    }

    impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
        /// Applies `f` to every `(chunk_index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a [T])) + Sync,
        {
            let chunks = self.inner.chunk_count();
            let workers = workers_for(self.inner.slice.len(), chunks);
            let size = self.inner.chunk_size;
            if workers <= 1 {
                for (i, chunk) in self.inner.slice.chunks(size).enumerate() {
                    f((i, chunk));
                }
                return;
            }
            let mut sections = Vec::with_capacity(workers);
            let mut rest = self.inner.slice;
            for w in 0..workers {
                let lo = w * chunks / workers;
                let hi = (w + 1) * chunks / workers;
                let elems = ((hi - lo) * size).min(rest.len());
                let (head, tail) = rest.split_at(elems);
                sections.push((lo, head));
                rest = tail;
            }
            let f = &f;
            std::thread::scope(|scope| {
                // Spawn workers for all but the first section; the calling
                // thread processes section 0 itself instead of idling.
                let mut sections = sections.into_iter();
                let head = sections.next();
                for (base, section) in sections {
                    scope.spawn(move || {
                        for (offset, chunk) in section.chunks(size).enumerate() {
                            f((base + offset, chunk));
                        }
                    });
                }
                if let Some((base, section)) = head {
                    for (offset, chunk) in section.chunks(size).enumerate() {
                        f((base + offset, chunk));
                    }
                }
            });
        }
    }

    /// A pending parallel iteration over mutable chunks (the stub analogue
    /// of `rayon::slice::ChunksMut`).
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        fn chunk_count(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }

        /// Applies `f` to every chunk, fanning out over the worker pool.
        /// Chunks are disjoint, so workers never alias.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }

        /// Pairs every chunk with its global index.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate { inner: self }
        }

        /// Sequential fallback for combinators the stub does not fan out.
        pub fn into_seq(self) -> std::slice::ChunksMut<'a, T> {
            self.slice.chunks_mut(self.chunk_size)
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct ParChunksMutEnumerate<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
        /// Applies `f` to every `(chunk_index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            let chunks = self.inner.chunk_count();
            let workers = workers_for(self.inner.slice.len(), chunks);
            let size = self.inner.chunk_size;
            if workers <= 1 {
                for (i, chunk) in self.inner.slice.chunks_mut(size).enumerate() {
                    f((i, chunk));
                }
                return;
            }
            let mut sections = Vec::with_capacity(workers);
            let mut rest = self.inner.slice;
            for w in 0..workers {
                let lo = w * chunks / workers;
                let hi = (w + 1) * chunks / workers;
                let elems = ((hi - lo) * size).min(rest.len());
                let (head, tail) = rest.split_at_mut(elems);
                sections.push((lo, head));
                rest = tail;
            }
            let f = &f;
            std::thread::scope(|scope| {
                // Spawn workers for all but the first section; the calling
                // thread processes section 0 itself instead of idling.
                let mut sections = sections.into_iter();
                let head = sections.next();
                for (base, section) in sections {
                    scope.spawn(move || {
                        for (offset, chunk) in section.chunks_mut(size).enumerate() {
                            f((base + offset, chunk));
                        }
                    });
                }
                if let Some((base, section)) = head {
                    for (offset, chunk) in section.chunks_mut(size).enumerate() {
                        f((base + offset, chunk));
                    }
                }
            });
        }
    }

    /// Chunked access to shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel analogue of `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Chunked access to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel analogue of `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

/// Mirrors `rayon::prelude` for glob imports.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_chunks_mut_visits_every_chunk() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_above_threshold() {
        // Large enough to actually fan out on a multi-core machine; indices
        // and contents must come out exactly as in the sequential case.
        let n = 100_000usize;
        let chunk = 257;
        let mut data = vec![0usize; n];
        data.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, part)| {
                for (j, v) in part.iter_mut().enumerate() {
                    *v = i * chunk + j;
                }
            });
        for (expected, &got) in data.iter().enumerate() {
            assert_eq!(expected, got);
        }
    }

    #[test]
    fn par_chunks_reads_every_chunk_once() {
        let data: Vec<u64> = (0..50_000).collect();
        let seen = Mutex::new(HashSet::new());
        let total = Mutex::new(0u64);
        data.par_chunks(1000).enumerate().for_each(|(i, chunk)| {
            assert!(seen.lock().unwrap().insert(i), "chunk {i} visited twice");
            *total.lock().unwrap() += chunk.iter().sum::<u64>();
        });
        assert_eq!(seen.lock().unwrap().len(), 50);
        assert_eq!(*total.lock().unwrap(), (0..50_000u64).sum::<u64>());
    }

    #[test]
    fn parallel_for_each_uses_multiple_threads_when_available() {
        // On a single-core machine this trivially holds with one thread.
        let data = vec![1u8; 1 << 20];
        let threads = Mutex::new(HashSet::new());
        data.par_chunks(4096).for_each(|_| {
            threads.lock().unwrap().insert(std::thread::current().id());
        });
        let used = threads.lock().unwrap().len();
        let cap = super::current_num_threads();
        assert!(used >= 1 && used <= cap.max(1));
        if cap > 1 {
            assert!(used > 1, "expected fan-out on a {cap}-thread machine");
        }
    }

    #[test]
    fn par_iter_matches_iter() {
        let data = vec![1, 2, 3, 4];
        let a: i32 = data.par_iter().sum();
        assert_eq!(a, 10);
        let b: Vec<i32> = data.into_par_iter().map(|v| v * 2).collect();
        assert_eq!(b, [2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_map_collect_equals_sequential_above_threshold() {
        // Large enough to fan out on a multi-core machine; the collected
        // order must equal the sequential map exactly.
        let data: Vec<u64> = (0..100_000).collect();
        let par: Vec<u64> = data.par_iter().map(|&v| v * 3 + 1).collect();
        let seq: Vec<u64> = data.iter().map(|&v| v * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn into_par_iter_sum_equals_sequential() {
        let data: Vec<u64> = (0..100_000).collect();
        let expected: u64 = data.iter().sum();
        let got: u64 = data.into_par_iter().sum();
        assert_eq!(got, expected);
    }

    #[test]
    fn par_iter_mut_for_each_equals_sequential() {
        let mut par: Vec<usize> = vec![0; 50_000];
        par.par_iter_mut().enumerate().for_each(|(i, v)| *v = i * 7);
        let seq: Vec<usize> = (0..50_000).map(|i| i * 7).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn indexed_splitting_is_exact_even_when_forced() {
        // The 1-CPU fallback would mask splitting bugs, so drive the
        // executor with an explicit section count: every element must be
        // visited exactly once, with its global index intact.
        use crate::iter::{IntoParallelRefIterator, ParallelIterator};
        let data: Vec<u32> = (0..10_001).collect();
        let visited = Mutex::new(vec![0u8; data.len()]);
        crate::iter::drive(data.par_iter().enumerate(), 8, &|section| {
            for (i, &v) in section {
                assert_eq!(i as u32, v, "index/value pairing must survive splits");
                visited.lock().unwrap()[i] += 1;
            }
        });
        assert!(visited.lock().unwrap().iter().all(|&n| n == 1));
    }

    #[test]
    fn forced_reduce_concatenates_in_index_order() {
        use crate::iter::{IntoParallelIterator, ParallelIterator};
        let data: Vec<i64> = (0..9_999).collect();
        let collected = crate::iter::reduce(
            data.clone().into_par_iter().map(|v| v * 2),
            7,
            &|seq| seq.collect::<Vec<i64>>(),
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        let seq: Vec<i64> = data.iter().map(|v| v * 2).collect();
        assert_eq!(collected, seq);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
