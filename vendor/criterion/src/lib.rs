//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset its benches actually use*:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! the [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! Measurement is a deliberately simple wall-clock protocol: each benchmark
//! runs one warm-up iteration, then `sample_size` timed iterations, and
//! reports min / mean / max per iteration on stdout. There are no statistical
//! confidence intervals, outlier classification, HTML reports or baseline
//! comparisons — for those, swap in the real crate (a one-line manifest
//! change; every bench compiles unmodified against either).
//!
//! One extension beyond the real crate's API surface: when the
//! `CRITERION_SUMMARY_PATH` environment variable is set, every benchmark
//! appends one JSON line (`{"label": ..., "mean_ns": ..., "min_ns": ...,
//! "max_ns": ..., "samples": ...}`) to that file. The `bench_gate` binary in
//! `ptycho-bench` consumes those lines to compare a run against the
//! committed `BENCH_baseline.json` and fail CI on large hot-path
//! regressions.
//!
//! ```
//! use criterion::{Criterion, black_box};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation (accepted, surfaced in the report header).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times the closure handed to it by a benchmark definition.
pub struct Bencher<'a> {
    sample_size: usize,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Runs `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Appends one machine-readable result line to `CRITERION_SUMMARY_PATH`, if
/// set. Labels contain only identifier characters and `/`, so no JSON
/// escaping is needed; a write failure is reported but never fails the run.
fn append_summary_line(label: &str, mean: Duration, min: Duration, max: Duration, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_PATH") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\": \"{label}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {samples}}}\n",
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("criterion stand-in: could not append to {path}: {error}");
    }
}

fn run_and_report(label: &str, sample_size: usize, body: impl FnOnce(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher {
        sample_size,
        samples: &mut samples,
    };
    body(&mut bencher);
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    println!(
        "{label:<60} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len(),
    );
    append_summary_line(label, mean, min, max, samples.len());
}

/// A named collection of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Accepted for API compatibility; this stand-in always runs exactly
    /// `sample_size` iterations regardless of the requested wall-clock
    /// budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (printed alongside the group name).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("  [throughput: {throughput:?}]");
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_and_report(&label, self.sample_size, |b| body(b));
        self
    }

    /// Defines and immediately runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_and_report(&label, self.sample_size, |b| body(b, input));
        self
    }

    /// Ends the group (a report separator in this stand-in).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Defines and immediately runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_and_report(&id.into().id, sample_size, |b| body(b));
        self
    }

    /// Prints the closing summary line (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!("benchmark run complete (offline criterion stand-in; no statistics)");
    }
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_registered_benchmarks() {
        let mut calls = 0usize;
        {
            let mut c = Criterion::default();
            let mut group = c.benchmark_group("demo");
            group.sample_size(3);
            group.bench_function("one", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("two", 7), &7usize, |b, &n| {
                b.iter(|| calls += n)
            });
            group.finish();
        }
        // one: 1 warmup + 3 samples = 4; two: (1 + 3) * 7 = 28.
        assert_eq!(calls, 4 + 28);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("fft", 256).id, "fft/256");
        assert_eq!(BenchmarkId::from_parameter("64px").id, "64px");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(750)), "750 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
