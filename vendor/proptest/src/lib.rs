//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset its property tests actually use*:
//!
//! * the [`proptest!`] macro (including the `#![proptest_config(..)]` inner
//!   attribute and `name in strategy` argument bindings),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0usize..200`, `-100.0f64..100.0`, …), tuple
//!   strategies, [`strategy::Strategy::prop_map`], [`strategy::Just`] and
//!   [`collection::vec`],
//! * [`test_runner::Config`] (exported from the prelude as `ProptestConfig`)
//!   with `with_cases`.
//!
//! Each test function runs its body over `cases` deterministically generated
//! inputs (seeded per-test from the test's module path, overridable via the
//! `PROPTEST_STUB_SEED` environment variable). On a failure the runner
//! **shrinks** the inputs before reporting: numeric range strategies propose
//! halving steps toward their low endpoint (tuples component-wise, `vec`s by
//! length), and the first candidate that still fails is adopted greedily
//! until no candidate fails — so the panic message leads with a minimal
//! counterexample, not the raw generated inputs (which are included too).
//! Unlike the real crate there are no value trees (mapped strategies do not
//! shrink) and no persisted regression corpus. The call surface is
//! compatible, so replacing this stub with the real crate is a one-line
//! manifest change.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The crate-level doctest demonstrates `proptest!`, whose grammar requires a
// `#[test]` attribute on each property.
#![allow(clippy::test_attr_in_doctest)]

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated input cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real crate defaults to 256; this stub matches it.
            Config { cases: 256 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type produced by a property-test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator driving input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (usually
        /// `module_path!() :: test_name`), so each test draws an independent
        /// but reproducible stream. Set `PROPTEST_STUB_SEED` to perturb every
        /// stream at once when hunting for flaky properties.
        pub fn deterministic(test_id: &str) -> Self {
            // FNV-1a over the identifier.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_STUB_SEED") {
                if let Ok(seed) = extra.trim().parse::<u64>() {
                    h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform index in `[0, bound)`.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample from an empty set");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Upper bound on shrink attempts per failing case.
    const MAX_SHRINK_STEPS: u32 = 1024;

    /// The engine behind the [`proptest!`](crate::proptest) macro: runs
    /// `run_case` over `config.cases` generated inputs and, on a failure,
    /// greedily shrinks the input (adopting the first candidate
    /// simplification that still fails, repeatedly) before panicking with
    /// the minimal counterexample.
    pub fn run_property<S: crate::strategy::Strategy>(
        config: &Config,
        name: &str,
        test_id: &str,
        strategy: &S,
        run_case: impl Fn(&S::Value) -> TestCaseResult,
        render: impl Fn(&S::Value) -> String,
    ) {
        let mut rng = TestRng::deterministic(test_id);
        for case in 0..config.cases {
            let current = strategy.new_value(&mut rng);
            if run_case(&current).is_ok() {
                continue;
            }
            let original = render(&current);
            let mut minimal = current;
            let mut steps = 0u32;
            'shrinking: loop {
                let mut advanced = false;
                for candidate in strategy.shrink(&minimal) {
                    if steps >= MAX_SHRINK_STEPS {
                        break 'shrinking;
                    }
                    steps += 1;
                    if run_case(&candidate).is_err() {
                        minimal = candidate;
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
            let error = run_case(&minimal).expect_err("the minimal counterexample still fails");
            panic!(
                "property `{}` failed on case {}/{}: {}\n  minimal input ({} shrink steps): {}\n  original input: {}",
                name,
                case + 1,
                config.cases,
                error,
                steps,
                render(&minimal),
                original,
            );
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an output type from random bits (mirrors
    /// `proptest::strategy::Strategy`; shrinking is a flat candidate list
    /// instead of the real crate's value trees).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, *simplest first*. The test
        /// runner greedily re-runs a failing property on each candidate and
        /// adopts any that still fails, so repeated application converges on
        /// a minimal counterexample. Numeric ranges halve toward their low
        /// endpoint; tuples shrink component-wise; strategies without a
        /// meaningful simplification (e.g. [`Just`], mapped strategies whose
        /// transformation cannot be inverted) return no candidates.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }

        /// Generates a value, then uses it to pick a follow-up strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, map }
        }

        /// Discards generated values failing `filter` (retries generation;
        /// panics if the predicate rejects 1000 draws in a row).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            filter: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                filter,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.map)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        filter: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let value = self.source.new_value(rng);
                if (self.filter)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.whence
            );
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Halving candidates for an integer value shrinking toward `lo`
    /// (computed in `i128` so every vendored integer type fits).
    fn halve_toward(lo: i128, value: i128) -> Vec<i128> {
        if value <= lo {
            return Vec::new();
        }
        let mut candidates = vec![lo, lo + (value - lo) / 2, value - 1];
        candidates.dedup();
        candidates.retain(|&c| c < value);
        candidates
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "cannot sample from empty range");
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    halve_toward(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "cannot sample from empty range");
                    (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    halve_toward(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let lo = self.start;
            if *value <= lo {
                return Vec::new();
            }
            let mid = lo + (*value - lo) / 2.0;
            let mut candidates = vec![lo];
            if mid > lo && mid < *value {
                candidates.push(mid);
            }
            candidates
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
        fn shrink(&self, value: &f32) -> Vec<f32> {
            let lo = self.start;
            if *value <= lo {
                return Vec::new();
            }
            let mid = lo + (*value - lo) / 2.0;
            let mut candidates = vec![lo];
            if mid > lo && mid < *value {
                candidates.push(mid);
            }
            candidates
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Component-wise: shrink one coordinate at a time with
                    // the others held fixed.
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut shrunk = value.clone();
                            shrunk.$idx = candidate;
                            out.push(shrunk);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple_strategy!(A 0);
    impl_tuple_strategy!(A 0, B 1);
    impl_tuple_strategy!(A 0, B 1, C 2);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = if span <= 1 {
                self.size.min
            } else {
                self.size.min + rng.next_index(span)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            // Shrink the length by halving toward the minimum; element-wise
            // shrinking is left to the real crate.
            let len = value.len();
            if len <= self.size.min {
                return Vec::new();
            }
            let mut lengths = vec![self.size.min, self.size.min + (len - self.size.min) / 2];
            lengths.push(len - 1);
            lengths.dedup();
            lengths.retain(|&l| l < len);
            lengths.into_iter().map(|l| value[..l].to_vec()).collect()
        }
    }
}

/// Everything a property-test module glob-imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop` (`prop::collection::vec(..)`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the enclosing property if `cond` is false.
///
/// Expands to an early `return Err(..)`, so it is only valid inside a
/// [`proptest!`] body (or any function returning
/// [`test_runner::TestCaseResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` inner attribute followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            // All argument strategies combined into one tuple strategy, so
            // the runner can draw and shrink the inputs as a unit.
            let strategy = ($(($strategy),)+);
            $crate::test_runner::run_property(
                &config,
                stringify!($name),
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |__case| {
                    let ($($arg,)+) = ::core::clone::Clone::clone(__case);
                    $body
                    ::core::result::Result::Ok(())
                },
                |__case| {
                    let ($($arg,)+) = __case;
                    format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    )
                },
            );
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -16i64..32, b in 0usize..24, c in -1.5f64..2.5) {
            prop_assert!((-16..32).contains(&a));
            prop_assert!(b < 24);
            prop_assert!((-1.5..2.5).contains(&c));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair <= 18);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0i32..5, 7usize)) {
            prop_assert_eq!(v.len(), 7);
            for e in v {
                prop_assert!((0..5).contains(&e));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]
        #[test]
        fn config_is_honoured(x in 0u64..1000) {
            // 13 cases run; each must satisfy the bound.
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0u32..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = crate::test_runner::TestRng::deterministic("just");
        let s = Just(vec![1, 2, 3]);
        assert_eq!(
            crate::strategy::Strategy::new_value(&s, &mut rng),
            [1, 2, 3]
        );
    }

    #[test]
    fn int_range_shrinks_toward_the_low_endpoint() {
        let strategy = 5i64..100;
        let candidates = Strategy::shrink(&strategy, &80);
        assert!(candidates.contains(&5), "the low endpoint is a candidate");
        assert!(candidates.iter().all(|&c| (5..80).contains(&c)));
        assert!(
            Strategy::shrink(&strategy, &5).is_empty(),
            "the low endpoint itself cannot shrink"
        );
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let strategy = (0u32..10, 0u32..10);
        let candidates = Strategy::shrink(&strategy, &(4, 6));
        assert!(!candidates.is_empty());
        for (a, b) in candidates {
            let first_changed = a != 4;
            let second_changed = b != 6;
            assert!(
                first_changed != second_changed,
                "exactly one component changes per candidate: ({a}, {b})"
            );
        }
    }

    #[test]
    fn vec_shrinks_by_length_toward_the_minimum() {
        let strategy = crate::collection::vec(0i32..5, 2usize..9);
        let value = vec![1, 2, 3, 4, 0, 1];
        let candidates = Strategy::shrink(&strategy, &value);
        assert!(candidates.iter().any(|c| c.len() == 2));
        for candidate in &candidates {
            assert!(candidate.len() < value.len());
            assert_eq!(candidate[..], value[..candidate.len()]);
        }
    }

    #[test]
    fn failing_property_reports_a_minimal_counterexample() {
        // Fails for every x >= 10: greedy halving must land exactly on 10,
        // the boundary, whatever the original failing draw was.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn boundary_at_ten(x in 0u64..1000) {
                prop_assert!(x < 10, "x was {}", x);
            }
        }
        let panic = std::panic::catch_unwind(boundary_at_ten)
            .expect_err("the property must fail within 8 cases");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert!(
            message.contains("minimal input"),
            "shrunk report missing: {message}"
        );
        assert!(
            message.contains("x = 10;"),
            "expected the minimal counterexample x = 10, got: {message}"
        );
        assert!(
            message.contains("original input"),
            "the raw generated input is still reported: {message}"
        );
    }
}
