//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset its property tests actually use*:
//!
//! * the [`proptest!`] macro (including the `#![proptest_config(..)]` inner
//!   attribute and `name in strategy` argument bindings),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`0usize..200`, `-100.0f64..100.0`, …), tuple
//!   strategies, [`strategy::Strategy::prop_map`], [`strategy::Just`] and
//!   [`collection::vec`],
//! * [`test_runner::Config`] (exported from the prelude as `ProptestConfig`)
//!   with `with_cases`.
//!
//! Each test function runs its body over `cases` deterministically generated
//! inputs (seeded per-test from the test's module path, overridable via the
//! `PROPTEST_STUB_SEED` environment variable). Failures report the generated
//! inputs. Unlike the real crate there is **no shrinking** and no persisted
//! regression corpus — a failing case is reported as generated. The call
//! surface is compatible, so replacing this stub with the real crate is a
//! one-line manifest change and restores shrinking for free.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The crate-level doctest demonstrates `proptest!`, whose grammar requires a
// `#[test]` attribute on each property.
#![allow(clippy::test_attr_in_doctest)]

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated input cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real crate defaults to 256; this stub matches it.
            Config { cases: 256 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type produced by a property-test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator driving input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (usually
        /// `module_path!() :: test_name`), so each test draws an independent
        /// but reproducible stream. Set `PROPTEST_STUB_SEED` to perturb every
        /// stream at once when hunting for flaky properties.
        pub fn deterministic(test_id: &str) -> Self {
            // FNV-1a over the identifier.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_STUB_SEED") {
                if let Ok(seed) = extra.trim().parse::<u64>() {
                    h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform index in `[0, bound)`.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample from an empty set");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an output type from random bits (mirrors
    /// `proptest::strategy::Strategy`, without value trees / shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }

        /// Generates a value, then uses it to pick a follow-up strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, map }
        }

        /// Discards generated values failing `filter` (retries generation;
        /// panics if the predicate rejects 1000 draws in a row).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            filter: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                filter,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.map)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        filter: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let value = self.source.new_value(rng);
                if (self.filter)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.whence
            );
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "cannot sample from empty range");
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "cannot sample from empty range");
                    (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = if span <= 1 {
                self.size.min
            } else {
                self.size.min + rng.next_index(span)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test module glob-imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop` (`prop::collection::vec(..)`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the enclosing property if `cond` is false.
///
/// Expands to an early `return Err(..)`, so it is only valid inside a
/// [`proptest!`] body (or any function returning
/// [`test_runner::TestCaseResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` inner attribute followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                // Rendered before the body runs: the body takes the inputs
                // by value and may consume them.
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -16i64..32, b in 0usize..24, c in -1.5f64..2.5) {
            prop_assert!((-16..32).contains(&a));
            prop_assert!(b < 24);
            prop_assert!((-1.5..2.5).contains(&c));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair <= 18);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0i32..5, 7usize)) {
            prop_assert_eq!(v.len(), 7);
            for e in v {
                prop_assert!((0..5).contains(&e));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]
        #[test]
        fn config_is_honoured(x in 0u64..1000) {
            // 13 cases run; each must satisfy the bound.
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0u32..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = crate::test_runner::TestRng::deterministic("just");
        let s = Just(vec![1, 2, 3]);
        assert_eq!(
            crate::strategy::Strategy::new_value(&s, &mut rng),
            [1, 2, 3]
        );
    }
}
