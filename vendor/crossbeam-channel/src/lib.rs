//! Offline stand-in for the
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses*: [`unbounded`]
//! channels with cloneable [`Sender`]s **and** cloneable [`Receiver`]s
//! (multi-producer multi-consumer), blocking [`Receiver::recv`], bounded-wait
//! [`Receiver::recv_timeout`] and non-blocking [`Receiver::try_recv`], with
//! disconnection reported once all peers on the other side have dropped.
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` — simpler and slower
//! than crossbeam's lock-free design, but semantically equivalent for the
//! message volumes the simulated cluster (`ptycho-cluster`) moves. Swapping
//! in the real crate is a one-line manifest change.
//!
//! ```
//! let (tx, rx) = crossbeam_channel::unbounded();
//! let rx2 = rx.clone(); // MPMC: receivers clone too
//! tx.send(41).unwrap();
//! tx.send(1).unwrap();
//! assert_eq!(rx.recv().unwrap() + rx2.recv().unwrap(), 42);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// The unsent payload is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like the real crate: Debug without requiring `T: Debug`.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the allowed wait.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// The sending half of an unbounded channel. Cloneable (multi-producer).
pub struct Sender<T> {
    channel: Arc<Channel<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value` without blocking (the channel is unbounded).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.channel.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.channel.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.channel.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            channel: Arc::clone(&self.channel),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.channel.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they can observe the disconnect.
            self.channel.not_empty.notify_all();
        }
    }
}

/// The receiving half of an unbounded channel. Cloneable (multi-consumer);
/// each message is delivered to exactly one receiver.
pub struct Receiver<T> {
    channel: Arc<Channel<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.channel.inner.lock().expect("channel poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .channel
                .not_empty
                .wait(inner)
                .expect("channel poisoned");
        }
    }

    /// Blocks until a message arrives, every sender is dropped, or `timeout`
    /// elapses — whichever happens first.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.channel.inner.lock().expect("channel poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .channel
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Returns a queued message if one is available, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.channel.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(value) => Ok(value),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.channel
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            channel: Arc::clone(&self.channel),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.channel
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers -= 1;
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let channel = Arc::new(Channel {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            channel: Arc::clone(&channel),
        },
        Receiver { channel },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u64>();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(77).unwrap();
        assert_eq!(handle.join().unwrap(), 77);
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
