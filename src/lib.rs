//! Facade crate for the Image Gradient Decomposition ptychography workspace.
//!
//! This repository reproduces Wang et al., *"Image Gradient Decomposition for
//! Parallel and Memory-Efficient Ptychographic Reconstruction"* (SC 2022) as
//! a seven-crate Rust workspace. This crate is a thin umbrella: it re-exports
//! every member so downstream code (and the repository-level integration
//! tests and examples it hosts) can depend on a single package, and its
//! module list doubles as the workspace map:
//!
//! * [`array`] — dense 2D/3D containers and rectangle algebra.
//! * [`fft`] — complex arithmetic and radix-2 FFT kernels.
//! * [`sim`] — electron-optics physics: probes, scans, multi-slice model,
//!   likelihood gradients, synthetic specimens.
//! * [`telemetry`] — deterministic observability: the structured event
//!   model, flight-recorder rings, metrics registry, and trace analysis.
//! * [`cluster`] — the simulated multi-rank cluster the solvers run on.
//! * [`core`] — the paper's contribution: gradient-decomposition
//!   reconstruction and the halo-voxel-exchange baseline.
//! * [`bench`] — experiment harnesses regenerating the paper's figures and
//!   tables.
//!
//! See `README.md` for the reproduction guide and `ARCHITECTURE.md` for how
//! the crates fit together.
//!
//! # Quick start
//!
//! ```
//! use ptycho::cluster::{Cluster, ClusterTopology};
//! use ptycho::core::{GradientDecompositionSolver, SolverConfig};
//! use ptycho::sim::dataset::{Dataset, SyntheticConfig};
//!
//! let dataset = Dataset::synthesize(SyntheticConfig::tiny());
//! let config = SolverConfig { iterations: 1, ..SolverConfig::default() };
//! let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
//! let result = solver.run(&Cluster::new(ClusterTopology::summit()));
//! assert_eq!(result.volume.shape(), dataset.object_shape());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ptycho_array as array;
pub use ptycho_bench as bench;
pub use ptycho_cluster as cluster;
pub use ptycho_core as core;
pub use ptycho_fft as fft;
pub use ptycho_sim as sim;
pub use ptycho_telemetry as telemetry;
