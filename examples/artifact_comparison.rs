//! Seam-artifact comparison (the scenario of Fig. 8): reconstruct the same
//! noisy dataset with the Halo Voxel Exchange baseline and with Gradient
//! Decomposition, then measure the discontinuities at tile borders and render
//! a small ASCII view of the border band.
//!
//! Run with:
//! ```text
//! cargo run --release -p ptycho-bench --example artifact_comparison
//! ```

use ptycho_array::{stats, Array2};
use ptycho_bench::experiments::{fig8, quality_dataset};
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::stitch::{border_mask, phase_image};
use ptycho_core::{GradientDecompositionSolver, SolverConfig};

/// Renders an image as coarse ASCII (for a quick visual check in a terminal).
fn ascii_view(image: &Array2<f64>, step: usize) -> String {
    let ramp: &[u8] = b" .:-=+*#%@";
    let lo = stats::min(image.as_slice());
    let hi = stats::max(image.as_slice());
    let range = (hi - lo).max(1e-12);
    let mut out = String::new();
    for r in (0..image.rows()).step_by(step) {
        for c in (0..image.cols()).step_by(step) {
            let v = (image[(r, c)] - lo) / range;
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    println!("running the Fig. 8 experiment (this reconstructs the dataset twice)...\n");
    let result = fig8(6);
    println!("seam metric (1.0 = no seams, higher = visible tile borders):");
    println!("  Halo Voxel Exchange:     {:.3}", result.hve_seam);
    println!("  Gradient Decomposition:  {:.3}", result.gd_seam);
    println!("phase RMSE vs ground truth:");
    println!("  Halo Voxel Exchange:     {:.4}", result.hve_rmse);
    println!("  Gradient Decomposition:  {:.4}", result.gd_rmse);

    // Render the Gradient Decomposition reconstruction and its tile borders.
    let dataset = quality_dataset(17);
    let config = SolverConfig {
        iterations: 6,
        halo_px: 32,
        ..SolverConfig::default()
    };
    let gd = GradientDecompositionSolver::new(&dataset, config, (2, 2))
        .run(&Cluster::new(ClusterTopology::summit()));
    let phase = phase_image(&gd.volume, 0);
    println!("\nGradient Decomposition reconstruction (phase, slice 0):");
    println!("{}", ascii_view(&phase, 3));

    let mask = border_mask(&gd.grid, 1);
    let border_pixels = mask.iter().filter(|&&b| b).count();
    println!(
        "tile-border band: {} pixels out of {} ({} tiles)",
        border_pixels,
        mask.len(),
        gd.grid.num_tiles()
    );
}
