//! Convergence vs. communication frequency (the scenario of Fig. 9), plus the
//! delayed-accumulation ablation of Algorithm 1.
//!
//! Run with:
//! ```text
//! cargo run --release -p ptycho-bench --example convergence_study
//! ```

use ptycho_bench::experiments::{fig9, quality_dataset};
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::config::PassFrequency;
use ptycho_core::{GradientDecompositionSolver, SolverConfig};

fn main() {
    let iterations = 8;
    println!("Fig. 9 experiment: cost F(V) per iteration for three pass frequencies\n");
    let curves = fig9(iterations);
    print!("{:>9}", "iteration");
    for curve in &curves {
        print!("  {:>26}", curve.label);
    }
    println!();
    for i in 0..iterations {
        print!("{:>9}", i + 1);
        for curve in &curves {
            print!("  {:>26.5}", curve.costs[i]);
        }
        println!();
    }

    // Ablation: local per-probe updates (Algorithm 1 as written) vs. pure
    // synchronous accumulation-only updates.
    println!("\nablation: local per-probe updates (step 8) on vs. off, once-per-iteration passes");
    let dataset = quality_dataset(31);
    let cluster = Cluster::new(ClusterTopology::summit());
    for local_updates in [true, false] {
        let config = SolverConfig {
            iterations,
            halo_px: 32,
            pass_frequency: PassFrequency::PerIteration(1),
            local_updates,
            ..SolverConfig::default()
        };
        let result = GradientDecompositionSolver::new(&dataset, config, (2, 3)).run(&cluster);
        println!(
            "  local_updates = {:<5}  final cost {:.5}  ({:.1}% reduction)",
            local_updates,
            result.cost_history.final_cost(),
            result.cost_history.relative_reduction() * 100.0
        );
    }
}
