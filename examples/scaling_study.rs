//! Strong-scaling study on real threads plus the paper-scale analytic model.
//!
//! The first part runs the Gradient Decomposition solver on 1, 2, 4 and 6
//! simulated GPU ranks (real threads on this machine) and reports measured
//! wall-clock compute time per rank. The second part uses the calibrated
//! performance model to print the paper-scale strong-scaling table of the
//! large Lead Titanate dataset (Table III(a) / Fig. 7a).
//!
//! Run with:
//! ```text
//! cargo run --release -p ptycho-bench --example scaling_study
//! ```

use ptycho_bench::experiments::{fig7a, PaperDataset};
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Instant;

fn main() {
    // Part 1: real threaded execution at laptop scale.
    let dataset = Dataset::synthesize(SyntheticConfig {
        object_px: 160,
        slices: 2,
        scan_grid: (6, 6),
        window_px: 32,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 9,
    });
    let cluster = Cluster::new(ClusterTopology::summit());
    let config = SolverConfig {
        iterations: 3,
        halo_px: 20,
        ..SolverConfig::default()
    };

    println!(
        "real threaded execution ({} probe locations, 3 iterations):",
        dataset.scan().len()
    );
    println!(
        "{:>6}  {:>12}  {:>16}  {:>14}",
        "ranks", "wall (s)", "max compute (s)", "final cost"
    );
    let mut baseline_wall = None;
    for ranks in [1usize, 2, 4, 6] {
        let solver = GradientDecompositionSolver::for_workers(&dataset, config, ranks);
        let start = Instant::now();
        let result = solver.run(&cluster);
        let wall = start.elapsed().as_secs_f64();
        let max_compute = result.time.iter().map(|t| t.compute).fold(0.0f64, f64::max);
        baseline_wall.get_or_insert(wall);
        println!(
            "{ranks:>6}  {wall:>12.2}  {max_compute:>16.2}  {:>14.4}",
            result.cost_history.final_cost()
        );
    }
    if let Some(base) = baseline_wall {
        println!("(speedups are limited by the physical cores of this machine; base {base:.2} s)");
    }

    // Part 2: paper-scale model (Fig. 7a / Table III(a)).
    println!("\npaper-scale model, large Lead Titanate dataset (calibrated at 6 GPUs = 5543 min):");
    println!(
        "{:>6}  {:>14}  {:>16}  {:>10}",
        "GPUs", "runtime (min)", "ideal O(1/P) min", "speedup"
    );
    let series = fig7a(PaperDataset::Large);
    let base = series[0].1;
    for (gpus, runtime, ideal) in series {
        println!(
            "{gpus:>6}  {runtime:>14.2}  {ideal:>16.2}  {:>9.0}x",
            base / runtime
        );
    }
}
