//! Quickstart: simulate a small electron-ptychography acquisition, reconstruct
//! it in parallel with the Gradient Decomposition method, and report the
//! convergence and reconstruction quality.
//!
//! Run with:
//! ```text
//! cargo run --release -p ptycho-bench --example quickstart
//! ```

use ptycho_array::stats;
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::stitch::phase_image;
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};

fn main() {
    // 1. Simulate an acquisition: a synthetic perovskite specimen scanned by a
    //    defocused probe, producing one diffraction pattern per probe location.
    //    The 45 nm defocus spreads each probe into a ~24 px circle and the 6x6
    //    raster steps by ~13 px, giving the high probe overlap (>70%) the
    //    paper's datasets have — the regime where gradients must be exchanged
    //    beyond direct neighbours.
    let dataset = Dataset::synthesize(SyntheticConfig::quickstart());
    println!("dataset: {}", dataset.name());
    println!(
        "probe overlap ratio: {:.0}%",
        dataset.scan().config().overlap_ratio() * 100.0
    );

    // 2. Decompose the reconstruction over a 2x3 tile grid (6 simulated GPUs)
    //    and run the Gradient Decomposition solver.
    // With >70% overlap every voxel accumulates many probe gradients per
    // pass, so relax the step accordingly; the halo covers the probe circle.
    let config = SolverConfig {
        iterations: 8,
        halo_px: 24,
        step_relaxation: 0.1,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::for_workers(&dataset, config, 6);
    println!(
        "tile grid: {:?}, halo: {} px",
        solver.grid().grid_shape(),
        solver.grid().halo_px()
    );

    let cluster = Cluster::new(ClusterTopology::summit());
    let result = solver.run(&cluster);

    // 3. Report convergence, runtime accounting and reconstruction quality.
    println!("\niteration   cost F(V)");
    for (i, cost) in result.cost_history.costs().iter().enumerate() {
        println!("{:>9}   {cost:.5}", i + 1);
    }
    println!(
        "\ncost reduced by {:.1}% over {} iterations",
        result.cost_history.relative_reduction() * 100.0,
        result.cost_history.iterations()
    );

    let truth = dataset.specimen().phase_slice(0);
    let reconstructed = phase_image(&result.volume, 0);
    println!(
        "phase correlation with ground truth: {:.3}",
        stats::normalized_cross_correlation(&truth, &reconstructed)
    );
    println!(
        "average peak memory per simulated GPU: {:.2} MB",
        result.average_peak_memory_bytes() / 1e6
    );
    let critical = result.critical_path();
    println!(
        "critical path: {:.2} s compute, {:.2} s wait, {:.4} s modelled communication",
        critical.compute, critical.wait, critical.communication
    );
}
